#include "obs/profile.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

namespace stgcc::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

bool starts_with(const std::string& s, const char* prefix) {
    return s.rfind(prefix, 0) == 0;
}

double num_or(const Json* j, double fallback = 0.0) {
    return j ? j->as_double() : fallback;
}

std::uint64_t uint_or(const Json* j, std::uint64_t fallback = 0) {
    return j ? j->as_uint() : fallback;
}

}  // namespace

// ---------------------------------------------------------------- traces

std::optional<Trace> parse_chrome_trace(const std::string& text) {
    const std::optional<Json> doc = Json::parse(text);
    if (!doc || doc->kind() != Json::Kind::Object) return std::nullopt;
    const Json* events = doc->find("traceEvents");
    if (!events || events->kind() != Json::Kind::Array) return std::nullopt;
    Trace trace;
    trace.events.reserve(events->size());
    for (std::size_t i = 0; i < events->size(); ++i) {
        const Json& e = events->at(i);
        const Json* ph = e.find("ph");
        if (!ph) continue;
        const std::string& phase = ph->as_string();
        TraceEvent ev;
        ev.tid = static_cast<std::uint32_t>(uint_or(e.find("tid")));
        if (phase == "M") {
            ev.phase = TraceEvent::Phase::kMeta;
            if (const Json* args = e.find("args"))
                if (const Json* name = args->find("name"))
                    ev.name = name->as_string();
        } else if (phase == "X") {
            ev.phase = TraceEvent::Phase::kComplete;
            if (const Json* name = e.find("name")) ev.name = name->as_string();
            ev.ts_us = num_or(e.find("ts"));
            ev.dur_us = num_or(e.find("dur"));
            if (const Json* args = e.find("args")) {
                ev.args = *args;
                ev.has_args = true;
            }
        } else if (phase == "s" || phase == "f") {
            ev.phase = phase == "s" ? TraceEvent::Phase::kFlowBegin
                                    : TraceEvent::Phase::kFlowEnd;
            ev.ts_us = num_or(e.find("ts"));
            ev.flow_id = uint_or(e.find("id"));
        } else {
            continue;  // unknown phases are not ours; skip, don't fail
        }
        trace.events.push_back(std::move(ev));
    }
    return trace;
}

std::string to_chrome_json(const Trace& trace) {
    // Field-for-field the Tracer's own emission (trace.cpp) so that
    // parse -> emit of an unmodified trace is byte-identical.
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    char buf[64];
    for (const TraceEvent& e : trace.events) {
        if (!first) out += ",\n";
        first = false;
        switch (e.phase) {
            case TraceEvent::Phase::kMeta:
                std::snprintf(buf, sizeof buf,
                              "{\"name\":\"thread_name\",\"ph\":\"M\","
                              "\"pid\":1,\"tid\":%u,\"args\":{\"name\":\"",
                              e.tid);
                out += buf;
                out += Json::escape(e.name) + "\"}}";
                break;
            case TraceEvent::Phase::kComplete:
                out += "{\"name\":\"" + Json::escape(e.name) +
                       "\",\"cat\":\"stgcc\",\"ph\":\"X\"";
                std::snprintf(buf, sizeof buf, ",\"ts\":%.3f", e.ts_us);
                out += buf;
                std::snprintf(buf, sizeof buf, ",\"dur\":%.3f", e.dur_us);
                out += buf;
                std::snprintf(buf, sizeof buf, ",\"pid\":1,\"tid\":%u", e.tid);
                out += buf;
                if (e.has_args) out += ",\"args\":" + e.args.dump();
                out += "}";
                break;
            case TraceEvent::Phase::kFlowBegin:
            case TraceEvent::Phase::kFlowEnd: {
                const bool begin = e.phase == TraceEvent::Phase::kFlowBegin;
                out += "{\"name\":\"sched.submit\",\"cat\":\"stgcc\","
                       "\"ph\":\"";
                out += begin ? "s" : "f";
                out += '"';
                if (!begin) out += ",\"bp\":\"e\"";
                std::snprintf(buf, sizeof buf, ",\"id\":%llu,\"ts\":%.3f",
                              static_cast<unsigned long long>(e.flow_id),
                              e.ts_us);
                out += buf;
                std::snprintf(buf, sizeof buf, ",\"pid\":1,\"tid\":%u}",
                              e.tid);
                out += buf;
                break;
            }
        }
    }
    out += "\n]}\n";
    return out;
}

// ------------------------------------------------------------- analysis

double sample_quantile(std::vector<double> samples, double q) {
    if (samples.empty()) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::sort(samples.begin(), samples.end());
    const double pos = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= samples.size()) return samples.back();
    return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

std::string model_family(const std::string& file) {
    std::string s = file;
    const auto slash = s.find_last_of("/\\");
    if (slash != std::string::npos) s.erase(0, slash + 1);
    const auto dot = s.rfind('.');
    if (dot != std::string::npos && dot > 0) s.erase(dot);
    static constexpr char kTag[] = "_csc";
    if (s.size() > 4 && s.compare(s.size() - 4, 4, kTag) == 0)
        s.erase(s.size() - 4);
    std::size_t end = s.size();
    while (end > 0 && std::isdigit(static_cast<unsigned char>(s[end - 1])))
        --end;
    if (end > 0 && end < s.size()) s.erase(end);
    // Single-letter variant tags: dup_mod_a / dup_mod_b are one family.
    if (s.size() > 2 && s[s.size() - 2] == '_' &&
        std::isalpha(static_cast<unsigned char>(s.back())))
        s.erase(s.size() - 2);
    return s;
}

TraceProfile profile_trace(const Trace& trace) {
    TraceProfile out;
    std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
    double min_ts = 0.0, max_end = 0.0;
    bool any_span = false;
    for (const TraceEvent& e : trace.events) {
        if (e.phase == TraceEvent::Phase::kMeta) {
            if (starts_with(e.name, "worker-")) ++out.workers;
            continue;
        }
        if (e.phase != TraceEvent::Phase::kComplete) continue;
        by_tid[e.tid].push_back(&e);
        if (!any_span || e.ts_us < min_ts) min_ts = e.ts_us;
        if (!any_span || e.ts_us + e.dur_us > max_end)
            max_end = e.ts_us + e.dur_us;
        any_span = true;
    }
    out.threads = static_cast<unsigned>(by_tid.size());
    if (any_span) out.wall_us = max_end - min_ts;

    // Self time by per-thread interval nesting: spans on one tid form a
    // properly nested forest (the Tracer records them from a per-thread
    // span stack), so a timestamp sweep with a stack recovers the tree.
    std::map<std::string, SpanProfile> agg;
    struct Open {
        double end_us;
        double self_us;
        const TraceEvent* ev;
    };
    for (auto& [tid, evs] : by_tid) {
        std::stable_sort(evs.begin(), evs.end(),
                         [](const TraceEvent* a, const TraceEvent* b) {
                             if (a->ts_us != b->ts_us)
                                 return a->ts_us < b->ts_us;
                             return a->dur_us > b->dur_us;
                         });
        std::vector<Open> stack;
        const auto close_top = [&] {
            const Open top = stack.back();
            stack.pop_back();
            SpanProfile& p = agg[top.ev->name];
            p.name = top.ev->name;
            ++p.count;
            p.total_us += top.ev->dur_us;
            p.self_us += std::max(0.0, top.self_us);
        };
        for (const TraceEvent* ev : evs) {
            while (!stack.empty() && stack.back().end_us <= ev->ts_us + 1e-9)
                close_top();
            if (stack.empty())
                out.busy_us += ev->dur_us;  // top level: new busy interval
            else
                stack.back().self_us -= ev->dur_us;
            stack.push_back(Open{ev->ts_us + ev->dur_us, ev->dur_us, ev});
        }
        while (!stack.empty()) close_top();
    }
    out.spans.reserve(agg.size());
    for (auto& [name, p] : agg) out.spans.push_back(std::move(p));
    std::sort(out.spans.begin(), out.spans.end(),
              [](const SpanProfile& a, const SpanProfile& b) {
                  if (a.self_us != b.self_us) return a.self_us > b.self_us;
                  return a.name < b.name;
              });

    // Queue delays out of the flow links: "s" stamps the submit site, the
    // matching "f" stamps where (and when) the task started running.
    std::unordered_map<std::uint64_t, double> begun;
    std::vector<double> samples;
    for (const TraceEvent& e : trace.events) {
        if (e.phase == TraceEvent::Phase::kFlowBegin)
            begun[e.flow_id] = e.ts_us;
        else if (e.phase == TraceEvent::Phase::kFlowEnd) {
            const auto it = begun.find(e.flow_id);
            if (it != begun.end())
                samples.push_back(std::max(0.0, e.ts_us - it->second));
        }
    }
    QueueDelayStats& qd = out.queue_delay;
    qd.samples = samples.size();
    if (!samples.empty()) {
        double sum = 0.0;
        for (const double s : samples) {
            sum += s;
            qd.max_us = std::max(qd.max_us, s);
        }
        qd.mean_us = sum / static_cast<double>(samples.size());
        qd.p50_us = sample_quantile(samples, 0.50);
        qd.p90_us = sample_quantile(samples, 0.90);
        qd.p99_us = sample_quantile(samples, 0.99);
    }
    return out;
}

// ------------------------------------------------------------- inputs

InputKind classify_report(const Json& doc) {
    if (doc.kind() != Json::Kind::Object) return InputKind::kUnknown;
    if (doc.find("traceEvents")) return InputKind::kTrace;
    const Json* tool = doc.find("tool");
    if (!tool) return InputKind::kUnknown;
    const std::string& t = tool->as_string();
    if (t == "stgbatch") return InputKind::kBatchReport;
    if (t == "stgcheck") return InputKind::kCheckReport;
    if (t == "stgcc-bench") return InputKind::kBenchReport;
    return InputKind::kUnknown;
}

bool load_input(const std::string& path, InputSet& in, std::string& error) {
    std::ifstream f(path);
    if (!f) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    const std::string text = buf.str();
    const std::optional<Json> doc = Json::parse(text);
    if (!doc) {
        error = "not valid JSON: " + path;
        return false;
    }
    switch (classify_report(*doc)) {
        case InputKind::kTrace: {
            std::optional<Trace> trace = parse_chrome_trace(text);
            if (!trace) {
                error = "malformed trace: " + path;
                return false;
            }
            in.trace = std::move(*trace);
            in.trace_file = path;
            return true;
        }
        case InputKind::kBatchReport:
            in.batch = *doc;
            in.batch_file = path;
            return true;
        case InputKind::kCheckReport:
            in.checks.push_back(*doc);
            return true;
        case InputKind::kBenchReport:
            in.benches.push_back(*doc);
            return true;
        case InputKind::kUnknown:
            break;
    }
    error = "unrecognized input (expected a Chrome trace, an stgcheck/"
            "stgbatch --json report, or a BENCH_*.json): " +
            path;
    return false;
}

// ----------------------------------------------------------- reporting

namespace {

/// The scheduler tallies a report body carries (stgbatch "stats"/"sched",
/// or an stgcheck report's metrics), normalized to seconds.
struct SchedSnapshot {
    bool valid = false;
    double workers = 0.0;
    double wall_s = 0.0;
    double busy_s = 0.0;
    double external_busy_s = 0.0;  ///< busy_s portion run by helping callers
    double queue_delay_s = 0.0;
    double critical_path_s = 0.0;
    double park_s = 0.0;
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
    std::uint64_t steal_failures = 0;
    std::uint64_t parks = 0;
    std::uint64_t injector_contention = 0;

    /// Worker count plus the fractional capacity non-worker threads added
    /// by helping through waits (a caller that executed tasks for half the
    /// run counts as half a worker).
    [[nodiscard]] double effective_workers() const {
        if (wall_s <= 0.0) return workers;
        return workers + external_busy_s / wall_s;
    }
};

SchedSnapshot sched_from_batch(const Json& envelope) {
    SchedSnapshot s;
    const Json* body = envelope.find("body");
    if (!body) return s;
    const Json* stats = body->find("stats");
    const Json* sched = stats ? stats->find("sched") : nullptr;
    if (!sched) return s;
    s.workers = num_or(sched->find("workers"), 1.0);
    s.wall_s = num_or(sched->find("wall_ns")) / 1e9;
    s.busy_s = num_or(sched->find("busy_ns")) / 1e9;
    s.external_busy_s = num_or(sched->find("external_busy_ns")) / 1e9;
    s.queue_delay_s = num_or(sched->find("queue_delay_ns")) / 1e9;
    s.critical_path_s = num_or(sched->find("critical_path_ns")) / 1e9;
    s.park_s = num_or(sched->find("park_ns")) / 1e9;
    s.executed = uint_or(sched->find("executed"));
    s.stolen = uint_or(sched->find("stolen"));
    s.steal_failures = uint_or(sched->find("steal_failures"));
    s.parks = uint_or(sched->find("parks"));
    s.injector_contention = uint_or(sched->find("injector_contention"));
    // Serial runs (no pool) record only workers + wall clock; without busy
    // time there is no work-span decomposition -- fall back to the trace.
    s.valid = s.workers > 0.0 && s.wall_s > 0.0 && s.busy_s > 0.0;
    return s;
}

/// Makespan-overhead decomposition.  The ideal wall clock is busy/workers
/// (all work spread perfectly); everything above it is overhead, split --
/// in priority order, each clamped to what remains -- into:
///   serialization:   the critical path exceeding the balanced bound (no
///                    schedule can close this gap),
///   steal contention: per-worker parked time (idle after failed scans),
///   queue delay:     the residual -- workers neither executing nor parked
///                    while tasks queue (scan/dispatch latency).
/// All three are fractions of the wall clock, so each reads as "removing
/// this loss entirely would shorten the run by X%".
struct BottleneckShares {
    double queue_delay = 0.0;
    double steal = 0.0;
    double serialization = 0.0;
    double overhead = 0.0;  ///< total (wall - busy/workers) / wall
};

BottleneckShares shares_of(const SchedSnapshot& s) {
    BottleneckShares b;
    if (!s.valid) return b;
    const double ideal_s = s.busy_s / s.effective_workers();
    double left = std::max(0.0, s.wall_s - ideal_s);
    b.overhead = left / s.wall_s;
    b.serialization =
        std::min(left, std::max(0.0, s.critical_path_s - ideal_s));
    left -= b.serialization;
    b.steal = std::min(left, s.park_s / s.workers);
    left -= b.steal;
    b.queue_delay = left;
    b.serialization /= s.wall_s;
    b.steal /= s.wall_s;
    b.queue_delay /= s.wall_s;
    return b;
}

const char* dominant_of(const BottleneckShares& b) {
    if (b.serialization >= b.queue_delay && b.serialization >= b.steal)
        return "serialization";
    if (b.queue_delay >= b.steal) return "queue delay";
    return "steal contention";
}

void append_rule(std::string& out, const char* title) {
    out += "\n";
    out += title;
    out += "\n";
    out.append(std::strlen(title), '-');
    out += "\n";
}

void append_efficiency(std::string& out, const SchedSnapshot& s) {
    append_rule(out, "parallel efficiency");
    if (s.external_busy_s > 0.0)
        appendf(out, "  workers            %.0f (+%.2f helping caller)\n",
                s.workers, s.external_busy_s / s.wall_s);
    else
        appendf(out, "  workers            %.0f\n", s.workers);
    appendf(out, "  wall clock         %.3f s\n", s.wall_s);
    appendf(out, "  busy (total work)  %.3f s\n", s.busy_s);
    appendf(out, "  efficiency         %.1f%%  (busy / workers x wall)\n",
            100.0 * s.busy_s / (s.effective_workers() * s.wall_s));
    if (s.critical_path_s > 0.0) {
        appendf(out, "  critical path      %.3f s\n", s.critical_path_s);
        appendf(out, "  speedup bound      %.2fx  (busy / critical path)\n",
                s.busy_s / s.critical_path_s);
    }
}

void append_queue_delay(std::string& out, const QueueDelayStats& qd) {
    append_rule(out, "queue delay (submit -> start)");
    if (qd.samples == 0) {
        out += "  no samples\n";
        return;
    }
    appendf(out,
            "  samples %zu   mean %.3f ms   p50 %.3f ms   p90 %.3f ms   "
            "p99 %.3f ms   max %.3f ms\n",
            qd.samples, qd.mean_us / 1e3, qd.p50_us / 1e3, qd.p90_us / 1e3,
            qd.p99_us / 1e3, qd.max_us / 1e3);
}

void append_bottlenecks(std::string& out, const SchedSnapshot& s) {
    const BottleneckShares b = shares_of(s);
    append_rule(out, "bottlenecks");
    struct Row {
        const char* what;
        double share;
        std::string detail;
    };
    std::string ser_detail, qd_detail, steal_detail;
    appendf(ser_detail, "critical path %.3f s vs balanced bound %.3f s",
            s.critical_path_s, s.busy_s / s.effective_workers());
    appendf(qd_detail, "%.3f s total queued over %llu tasks",
            s.queue_delay_s, static_cast<unsigned long long>(s.executed));
    appendf(steal_detail,
            "%llu parks (%.3f s), %llu failed steal scans, "
            "%llu contended injector pushes",
            static_cast<unsigned long long>(s.parks), s.park_s,
            static_cast<unsigned long long>(s.steal_failures),
            static_cast<unsigned long long>(s.injector_contention));
    std::vector<Row> rows = {
        {"serialization", b.serialization, ser_detail},
        {"queue delay", b.queue_delay, qd_detail},
        {"steal contention", b.steal, steal_detail},
    };
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& x, const Row& y) {
                         return x.share > y.share;
                     });
    for (std::size_t i = 0; i < rows.size(); ++i)
        appendf(out, "  %zu. %-17s %5.1f%%  %s\n", i + 1, rows[i].what,
                100.0 * rows[i].share, rows[i].detail.c_str());
    appendf(out, "  (makespan overhead over ideal busy/workers: %.1f%%)\n",
            100.0 * b.overhead);
    if (b.overhead < 0.01)
        out += "\ndominant bottleneck: none (near-ideal parallel "
               "efficiency)\n";
    else
        appendf(out, "\ndominant bottleneck: %s\n", dominant_of(b));
}

/// Cut funnel summed per model family out of stgbatch rows (each row's
/// "stats"/"cuts") and stgcheck reports ("stats"/"cuts" of the body).
struct FamilyCuts {
    std::uint64_t models = 0;
    std::uint64_t recorded = 0;
    std::uint64_t replayed = 0;
    std::uint64_t pruned = 0;
};

void append_cut_table(std::string& out,
                      const std::map<std::string, FamilyCuts>& families) {
    append_rule(out, "cut efficacy (recorded -> replayed -> pruned)");
    appendf(out, "  %-14s %6s %9s %9s %13s\n", "family", "models",
            "recorded", "replayed", "pruned nodes");
    FamilyCuts total;
    for (const auto& [family, c] : families) {
        appendf(out, "  %-14s %6llu %9llu %9llu %13llu\n", family.c_str(),
                static_cast<unsigned long long>(c.models),
                static_cast<unsigned long long>(c.recorded),
                static_cast<unsigned long long>(c.replayed),
                static_cast<unsigned long long>(c.pruned));
        total.models += c.models;
        total.recorded += c.recorded;
        total.replayed += c.replayed;
        total.pruned += c.pruned;
    }
    appendf(out, "  %-14s %6llu %9llu %9llu %13llu\n", "total",
            static_cast<unsigned long long>(total.models),
            static_cast<unsigned long long>(total.recorded),
            static_cast<unsigned long long>(total.replayed),
            static_cast<unsigned long long>(total.pruned));
}

void accumulate_cuts(std::map<std::string, FamilyCuts>& families,
                     const std::string& file, const Json* cuts) {
    FamilyCuts& c = families[model_family(file)];
    ++c.models;
    if (!cuts) return;
    c.recorded += uint_or(cuts->find("recorded"));
    c.replayed += uint_or(cuts->find("replayed"));
    c.pruned += uint_or(cuts->find("pruned_nodes"));
}

}  // namespace

std::string bottleneck_report(const InputSet& in) {
    std::string out = "stgprof: execution profile and bottleneck attribution\n"
                      "=====================================================\n";
    std::optional<TraceProfile> tp;
    if (in.trace) tp = profile_trace(*in.trace);

    out += "\ninputs:\n";
    if (in.trace)
        appendf(out, "  trace     %s: %zu events, %u threads, %u workers\n",
                in.trace_file.c_str(), in.trace->events.size(), tp->threads,
                tp->workers);
    std::size_t batch_models = 0;
    if (in.batch) {
        const Json* body = in.batch->find("body");
        const Json* models = body ? body->find("models") : nullptr;
        if (models) batch_models = models->size();
        appendf(out, "  stgbatch  %s: %zu models, jobs=%llu\n",
                in.batch_file.c_str(), batch_models,
                static_cast<unsigned long long>(
                    uint_or(body ? body->find("jobs") : nullptr)));
    }
    for (const Json& c : in.checks) {
        const Json* body = c.find("body");
        const Json* model = body ? body->find("model") : nullptr;
        appendf(out, "  stgcheck  model %s\n",
                model && model->find("name")
                    ? model->find("name")->as_string().c_str()
                    : "?");
    }
    for (const Json& b : in.benches)
        appendf(out, "  bench     BENCH_%s\n",
                b.find("bench") ? b.find("bench")->as_string().c_str() : "?");
    if (!in.trace && !in.batch && in.checks.empty() && in.benches.empty())
        out += "  (none)\n";

    // Efficiency + bottleneck attribution: the stgbatch scheduler section
    // is authoritative; a lone trace falls back to span-derived tallies.
    SchedSnapshot sched;
    if (in.batch) sched = sched_from_batch(*in.batch);
    if (!sched.valid && tp && tp->threads > 0 && tp->wall_us > 0.0) {
        sched.workers =
            static_cast<double>(tp->workers > 0 ? tp->workers : tp->threads);
        sched.wall_s = tp->wall_us / 1e6;
        sched.busy_s = tp->busy_us / 1e6;
        sched.queue_delay_s =
            tp->queue_delay.mean_us / 1e6 *
            static_cast<double>(tp->queue_delay.samples);
        sched.executed = tp->queue_delay.samples;
        sched.valid = true;
    }
    if (sched.valid) append_efficiency(out, sched);

    // Queue-delay percentiles: flow links when a trace is present, else the
    // sched.queue_delay_ns histogram snapshot of a report's metrics.
    if (tp && tp->queue_delay.samples > 0) {
        append_queue_delay(out, tp->queue_delay);
    } else {
        const Json* metrics = nullptr;
        if (in.batch && in.batch->find("body"))
            metrics = in.batch->find("body")->find("metrics");
        if (!metrics && !in.checks.empty() && in.checks[0].find("body"))
            metrics = in.checks[0].find("body")->find("metrics");
        const Json* hists = metrics ? metrics->find("histograms") : nullptr;
        const Json* h = hists ? hists->find("sched.queue_delay_ns") : nullptr;
        if (h) {
            QueueDelayStats qd;
            qd.samples = uint_or(h->find("count"));
            if (qd.samples > 0) {
                qd.mean_us = num_or(h->find("sum")) /
                             static_cast<double>(qd.samples) / 1e3;
                qd.p50_us = num_or(h->find("p50")) / 1e3;
                qd.p90_us = num_or(h->find("p90")) / 1e3;
                qd.p99_us = num_or(h->find("p99")) / 1e3;
                qd.max_us = qd.p99_us;  // histogram keeps no exact max
            }
            append_queue_delay(out, qd);
        }
    }

    if (tp && !tp->spans.empty()) {
        append_rule(out, "top spans by self time");
        appendf(out, "  %12s %12s %7s  %s\n", "self", "total", "count",
                "name");
        const std::size_t limit = std::min<std::size_t>(tp->spans.size(), 10);
        for (std::size_t i = 0; i < limit; ++i) {
            const SpanProfile& p = tp->spans[i];
            appendf(out, "  %9.3f ms %9.3f ms %7llu  %s\n", p.self_us / 1e3,
                    p.total_us / 1e3,
                    static_cast<unsigned long long>(p.count),
                    p.name.c_str());
        }
        if (tp->spans.size() > limit)
            appendf(out, "  (%zu more)\n", tp->spans.size() - limit);
    }

    std::map<std::string, FamilyCuts> families;
    if (in.batch) {
        const Json* body = in.batch->find("body");
        const Json* models = body ? body->find("models") : nullptr;
        if (models && models->kind() == Json::Kind::Array) {
            for (std::size_t i = 0; i < models->size(); ++i) {
                const Json& row = models->at(i);
                const Json* file = row.find("file");
                const Json* stats = row.find("stats");
                accumulate_cuts(families,
                                file ? file->as_string() : std::string("?"),
                                stats ? stats->find("cuts") : nullptr);
            }
        }
    }
    for (const Json& c : in.checks) {
        const Json* body = c.find("body");
        const Json* model = body ? body->find("model") : nullptr;
        const Json* stats = body ? body->find("stats") : nullptr;
        accumulate_cuts(families,
                        model && model->find("name")
                            ? model->find("name")->as_string()
                            : std::string("?"),
                        stats ? stats->find("cuts") : nullptr);
    }
    if (!families.empty()) append_cut_table(out, families);

    for (const Json& b : in.benches) {
        const Json* body = b.find("body");
        if (!body || body->kind() != Json::Kind::Array) continue;
        append_rule(out, "bench scaling");
        appendf(out, "  %-12s %5s %10s %9s %11s\n", "section", "jobs",
                "seconds", "speedup", "efficiency");
        for (std::size_t i = 0; i < body->size(); ++i) {
            const Json& row = body->at(i);
            const Json* jobs = row.find("jobs");
            const Json* seconds = row.find("seconds");
            if (!jobs || !seconds) continue;
            const double speedup = num_or(row.find("speedup"), 1.0);
            const double j = jobs->as_double();
            appendf(out, "  %-12s %5.0f %8.3f s %8.2fx %10.1f%%\n",
                    row.find("section")
                        ? row.find("section")->as_string().c_str()
                        : "-",
                    j, seconds->as_double(), speedup,
                    j > 0 ? 100.0 * speedup / j : 0.0);
        }
    }

    if (sched.valid) append_bottlenecks(out, sched);
    return out;
}

std::string compare_reports(const Json& a, const Json& b, double threshold) {
    std::string out = "stgprof: regression triage (A -> B)\n"
                      "===================================\n";
    const Json* abody = a.find("body");
    const Json* bbody = b.find("body");
    const auto describe = [&](const char* tag, const Json* body) {
        const Json* summary = body ? body->find("summary") : nullptr;
        appendf(out, "  %s: jobs=%llu, %llu models, %.3f s\n", tag,
                static_cast<unsigned long long>(
                    uint_or(body ? body->find("jobs") : nullptr)),
                static_cast<unsigned long long>(
                    uint_or(summary ? summary->find("total") : nullptr)),
                num_or(summary ? summary->find("seconds") : nullptr));
    };
    describe("A", abody);
    describe("B", bbody);
    const double a_wall =
        num_or(abody && abody->find("summary")
                   ? abody->find("summary")->find("seconds")
                   : nullptr);
    const double b_wall =
        num_or(bbody && bbody->find("summary")
                   ? bbody->find("summary")->find("seconds")
                   : nullptr);
    if (a_wall > 0.0)
        appendf(out, "  wall-clock ratio: %.2fx\n", b_wall / a_wall);

    // Per-model wall-clock ratios, matched by manifest file basename.
    struct ModelTime {
        double seconds = 0.0;
        bool present = false;
    };
    std::map<std::string, ModelTime> a_times;
    const auto basename = [](const std::string& p) {
        const auto slash = p.find_last_of("/\\");
        return slash == std::string::npos ? p : p.substr(slash + 1);
    };
    const Json* a_models = abody ? abody->find("models") : nullptr;
    if (a_models && a_models->kind() == Json::Kind::Array) {
        for (std::size_t i = 0; i < a_models->size(); ++i) {
            const Json& row = a_models->at(i);
            const Json* file = row.find("file");
            const Json* seconds = row.find("seconds");
            if (file && seconds)
                a_times[basename(file->as_string())] =
                    ModelTime{seconds->as_double(), true};
        }
    }
    appendf(out, "\nper-model regressions (>= %.2fx)\n", threshold);
    struct Regression {
        double ratio;
        double a_s, b_s;
        std::string model;
    };
    std::vector<Regression> regressions;
    const Json* b_models = bbody ? bbody->find("models") : nullptr;
    if (b_models && b_models->kind() == Json::Kind::Array) {
        for (std::size_t i = 0; i < b_models->size(); ++i) {
            const Json& row = b_models->at(i);
            const Json* file = row.find("file");
            const Json* seconds = row.find("seconds");
            if (!file || !seconds) continue;
            const std::string name = basename(file->as_string());
            const auto it = a_times.find(name);
            if (it == a_times.end() || it->second.seconds <= 0.0) continue;
            const double ratio = seconds->as_double() / it->second.seconds;
            if (ratio >= threshold)
                regressions.push_back(Regression{
                    ratio, it->second.seconds, seconds->as_double(), name});
        }
    }
    std::stable_sort(regressions.begin(), regressions.end(),
                     [](const Regression& x, const Regression& y) {
                         return x.ratio > y.ratio;
                     });
    if (regressions.empty()) {
        out += "  (none)\n";
    } else {
        appendf(out, "  %7s %10s %10s  %s\n", "ratio", "A", "B", "model");
        for (const Regression& r : regressions)
            appendf(out, "  %6.2fx %8.3f s %8.3f s  %s\n", r.ratio, r.a_s,
                    r.b_s, r.model.c_str());
    }

    const SchedSnapshot sa = sched_from_batch(a);
    const SchedSnapshot sb = sched_from_batch(b);
    if (sa.valid && sb.valid) {
        appendf(out, "\nefficiency: A %.1f%% -> B %.1f%%\n",
                100.0 * sa.busy_s / (sa.effective_workers() * sa.wall_s),
                100.0 * sb.busy_s / (sb.effective_workers() * sb.wall_s));
        const BottleneckShares ba = shares_of(sa);
        const BottleneckShares bb = shares_of(sb);
        out += "\nbottleneck shares (A -> B):\n";
        struct Delta {
            const char* what;
            double a, b;
        };
        std::vector<Delta> deltas = {
            {"queue delay", ba.queue_delay, bb.queue_delay},
            {"steal contention", ba.steal, bb.steal},
            {"serialization", ba.serialization, bb.serialization},
        };
        const Delta* worst = &deltas[0];
        for (const Delta& d : deltas) {
            appendf(out, "  %-17s %5.1f%% -> %5.1f%%  (%+.1f)\n", d.what,
                    100.0 * d.a, 100.0 * d.b, 100.0 * (d.b - d.a));
            if (d.b - d.a > worst->b - worst->a) worst = &d;
        }
        if (worst->b - worst->a >= 0.01)
            appendf(out, "\ndominant regression contributor: %s\n",
                    worst->what);
        else
            out += "\ndominant regression contributor: none (no bottleneck "
                   "share grew materially)\n";
    } else if (a_wall > 0.0 && b_wall / a_wall >= threshold) {
        out += "\ndominant regression contributor: wall clock (no scheduler "
               "stats in one of the reports)\n";
    }
    return out;
}

}  // namespace stgcc::obs
