#include "obs/expo.hpp"

#include <cstdio>

#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace stgcc::obs {

// ---------------------------------------------------------- RollingWindow

void RollingWindow::record(std::uint64_t value, std::uint64_t now_ns) {
    const std::uint64_t sec = now_ns / 1'000'000'000u;
    std::lock_guard<std::mutex> lock(mu_);
    Slot& s = slots_[sec % kSlots];
    if (s.sec != sec) {
        // Lazy reclamation: the slot last held a second >= kSlots ago (or
        // nothing); it leaves every window before it can be reused.
        s = Slot{};
        s.sec = sec;
    }
    ++s.count;
    s.sum += value;
    ++s.buckets[Histogram::bucket_of(value)];
}

std::uint64_t RollingWindow::count(std::uint64_t window_s,
                                   std::uint64_t now_ns) const {
    std::uint64_t total = 0;
    std::lock_guard<std::mutex> lock(mu_);
    for_window(window_s, now_ns, [&](const Slot& s) { total += s.count; });
    return total;
}

std::uint64_t RollingWindow::sum(std::uint64_t window_s,
                                 std::uint64_t now_ns) const {
    std::uint64_t total = 0;
    std::lock_guard<std::mutex> lock(mu_);
    for_window(window_s, now_ns, [&](const Slot& s) { total += s.sum; });
    return total;
}

double RollingWindow::rate(std::uint64_t window_s,
                           std::uint64_t now_ns) const {
    if (window_s == 0) return 0.0;
    return static_cast<double>(count(window_s, now_ns)) /
           static_cast<double>(window_s);
}

double RollingWindow::quantile(std::uint64_t window_s, double q,
                               std::uint64_t now_ns) const {
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t merged[Histogram::kBuckets] = {};
    std::uint64_t total = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for_window(window_s, now_ns, [&](const Slot& s) {
            for (int i = 0; i < Histogram::kBuckets; ++i) merged[i] += s.buckets[i];
            total += s.count;
        });
    }
    if (total == 0) return 0.0;
    const double target = q * static_cast<double>(total);
    double seen = 0.0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
        const auto in_bucket = static_cast<double>(merged[i]);
        if (in_bucket == 0.0) continue;
        if (seen + in_bucket >= target) {
            if (i == 0) return 0.0;  // bucket 0 holds exactly {0}
            const double lo = static_cast<double>(std::uint64_t{1} << (i - 1));
            const double hi = lo * 2.0 - 1.0;
            const double frac = (target - seen) / in_bucket;
            return lo + frac * (hi - lo);
        }
        seen += in_bucket;
    }
    return static_cast<double>(~std::uint64_t{0});
}

Json RollingWindow::to_json(std::uint64_t now_ns) const {
    Json out = Json::object();
    char key[32];
    for (const std::uint64_t w : kWindows) {
        std::snprintf(key, sizeof key, "rate_%llus",
                      static_cast<unsigned long long>(w));
        out.set(key, rate(w, now_ns));
    }
    const std::uint64_t longest = kWindows[2];
    out.set("p50", quantile(longest, 0.50, now_ns));
    out.set("p90", quantile(longest, 0.90, now_ns));
    out.set("p99", quantile(longest, 0.99, now_ns));
    return out;
}

// ------------------------------------------------------- Prometheus text

std::string prometheus_name(std::string_view prefix, std::string_view name) {
    std::string out;
    out.reserve(prefix.size() + 1 + name.size());
    const auto legal = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               (c >= '0' && c <= '9') || c == '_';
    };
    for (const char c : prefix) out += legal(c) ? c : '_';
    if (!out.empty()) out += '_';
    for (const char c : name) out += legal(c) ? c : '_';
    return out;
}

namespace {

void append_number(std::string& out, const Json& v) {
    // Counters and gauges are integers in the snapshot; quantiles are
    // doubles.  %g keeps doubles compact and byte-stable for a value.
    if (v.kind() == Json::Kind::Double) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%g", v.as_double());
        out += buf;
    } else if (v.kind() == Json::Kind::Int) {
        out += std::to_string(v.as_int());
    } else {
        out += std::to_string(v.as_uint());
    }
}

void type_line(std::string& out, const std::string& name, const char* type) {
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
}

}  // namespace

std::string prometheus_text(const Json& snapshot, std::string_view prefix) {
    std::string out;
    if (const Json* counters = snapshot.find("counters")) {
        for (std::size_t i = 0; i < counters->size(); ++i) {
            const auto& [name, value] = counters->member(i);
            const std::string p = prometheus_name(prefix, name) + "_total";
            type_line(out, p, "counter");
            out += p;
            out += ' ';
            append_number(out, value);
            out += '\n';
        }
    }
    if (const Json* gauges = snapshot.find("gauges")) {
        for (std::size_t i = 0; i < gauges->size(); ++i) {
            const auto& [name, value] = gauges->member(i);
            const std::string p = prometheus_name(prefix, name);
            type_line(out, p, "gauge");
            out += p;
            out += ' ';
            append_number(out, value);
            out += '\n';
        }
    }
    if (const Json* histograms = snapshot.find("histograms")) {
        for (std::size_t i = 0; i < histograms->size(); ++i) {
            const auto& [name, h] = histograms->member(i);
            const std::string p = prometheus_name(prefix, name);
            type_line(out, p, "histogram");
            // The snapshot lists only non-empty buckets with their
            // inclusive upper limits; cumulate them in order and close
            // with the mandatory +Inf bucket.
            std::uint64_t cumulative = 0;
            if (const Json* buckets = h.find("buckets")) {
                for (std::size_t b = 0; b < buckets->size(); ++b) {
                    const Json& entry = buckets->at(b);
                    const Json* le = entry.find("le");
                    const Json* count = entry.find("count");
                    if (!le || !count) continue;
                    cumulative += count->as_uint();
                    out += p;
                    out += "_bucket{le=\"";
                    out += std::to_string(le->as_uint());
                    out += "\"} ";
                    out += std::to_string(cumulative);
                    out += '\n';
                }
            }
            const Json* count = h.find("count");
            const Json* sum = h.find("sum");
            out += p;
            out += "_bucket{le=\"+Inf\"} ";
            out += std::to_string(count ? count->as_uint() : cumulative);
            out += '\n';
            out += p;
            out += "_sum ";
            out += std::to_string(sum ? sum->as_uint() : 0);
            out += '\n';
            out += p;
            out += "_count ";
            out += std::to_string(count ? count->as_uint() : cumulative);
            out += '\n';
            // The registry's interpolated quantile estimates as a
            // companion summary family (a family cannot be both histogram
            // and summary, hence the suffix).
            const std::string ps = p + "_summary";
            type_line(out, ps, "summary");
            constexpr const char* kQ[3] = {"0.5", "0.9", "0.99"};
            constexpr const char* kKey[3] = {"p50", "p90", "p99"};
            for (int q = 0; q < 3; ++q) {
                const Json* v = h.find(kKey[q]);
                out += ps;
                out += "{quantile=\"";
                out += kQ[q];
                out += "\"} ";
                if (v)
                    append_number(out, *v);
                else
                    out += '0';
                out += '\n';
            }
            out += ps;
            out += "_sum ";
            out += std::to_string(sum ? sum->as_uint() : 0);
            out += '\n';
            out += ps;
            out += "_count ";
            out += std::to_string(count ? count->as_uint() : 0);
            out += '\n';
        }
    }
    return out;
}

std::string prometheus_text() {
    return prometheus_text(Registry::instance().to_json());
}

std::uint64_t process_rss_bytes() {
#if defined(__linux__)
    // /proc/self/statm: size resident shared text lib data dt (pages).
    std::ifstream in("/proc/self/statm");
    std::uint64_t size_pages = 0, resident_pages = 0;
    if (!(in >> size_pages >> resident_pages)) return 0;
    const long page = ::sysconf(_SC_PAGESIZE);
    return resident_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
    return 0;
#endif
}

}  // namespace stgcc::obs
