// stgcc -- metrics registry: named monotonic counters, gauges, and
// histograms with fixed log2-scale buckets.
//
// Modules obtain a metric by name (`obs::counter("unfold.events")`) at
// construction time or via a function-local static and keep the reference;
// registration is idempotent and references stay valid for the process
// lifetime.  All update operations are lock-free relaxed atomics, safe to
// call from any thread.  Per-iteration updates in hot loops must be guarded
// by `if (obs::enabled())` so the disabled cost is a single branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace stgcc::obs {

namespace detail {
/// Shard-array capacity of a Counter (compile-time storage bound).  The
/// *effective* shard count is dynamic: it starts at the hardware
/// concurrency and is raised to the worker count whenever a
/// sched::WorkStealingPool is constructed (`raise_counter_shards`), so the
/// writer spread matches the actual thread population instead of a
/// hardcoded guess -- a 4-worker pool gets 5 shards, not 16, and a
/// 32-worker pool no longer folds two workers onto every slot.
inline constexpr unsigned kMaxCounterShards = 32;
/// Effective shard count in [1, kMaxCounterShards].
[[nodiscard]] unsigned counter_shards() noexcept;
/// Raise the effective shard count to `n` (clamped to capacity; never
/// shrinks -- threads keep the slot they first claimed, and `value()`
/// always sums the full capacity, so raising is write-path-only).
void raise_counter_shards(unsigned n) noexcept;
/// Stable per-thread shard slot (dense thread enumeration mod the
/// effective shard count at first use).
[[nodiscard]] unsigned counter_shard() noexcept;
}  // namespace detail

/// Monotonically increasing event count, sharded per thread: concurrent
/// writers from the parallel runtime (src/sched/) land on different cache
/// lines instead of serializing on a single atomic.  `value()` sums the
/// shards -- reads are racy-by-design snapshots, exact once writers are
/// quiescent (which is when reports are taken).
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        shards_[detail::counter_shard()].v.fetch_add(n,
                                                     std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        std::uint64_t total = 0;
        for (const Shard& s : shards_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }
    void reset() noexcept {
        for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
    }

private:
    struct alignas(64) Shard {
        std::atomic<std::uint64_t> v{0};
    };
    // No false sharing by construction: each shard owns a full cache line,
    // so adjacent array entries can never share one.
    static_assert(alignof(Shard) == 64, "counter shard must be line-aligned");
    static_assert(sizeof(Shard) == 64, "counter shard must fill its line");
    Shard shards_[detail::kMaxCounterShards];
};
static_assert(sizeof(Counter) == 64 * detail::kMaxCounterShards,
              "shard array must be exactly one cache line per shard");

/// Last-write-wins instantaneous value, plus a running-maximum helper.
class Gauge {
public:
    void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
    /// Raise the gauge to `v` if larger (peak tracking).
    void record_max(std::int64_t v) noexcept {
        std::int64_t cur = v_.load(std::memory_order_relaxed);
        while (v > cur &&
               !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    }
    [[nodiscard]] std::int64_t value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> v_{0};
};

/// Histogram over non-negative integer samples with fixed log2 buckets:
/// bucket 0 holds the value 0, bucket i >= 1 holds [2^(i-1), 2^i).
class Histogram {
public:
    static constexpr int kBuckets = 65;

    /// Bucket index of a sample (0 for 0, floor(log2(v)) + 1 otherwise).
    [[nodiscard]] static int bucket_of(std::uint64_t v) noexcept {
        int b = 0;
        while (v) {
            ++b;
            v >>= 1;
        }
        return b;
    }
    /// Inclusive upper bound of bucket `i`.
    [[nodiscard]] static std::uint64_t bucket_limit(int i) noexcept {
        return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }

    void observe(std::uint64_t v) noexcept {
        buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t count() const noexcept;
    [[nodiscard]] std::uint64_t sum() const noexcept {
        return sum_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t bucket(int i) const noexcept {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
    /// bucket holding the q-th sample.  Log2 buckets bound the relative
    /// error by 2x; good enough for p50/p90/p99 latency triage.  Returns 0
    /// for an empty histogram.
    [[nodiscard]] double quantile(double q) const noexcept;
    void reset() noexcept;

private:
    std::atomic<std::uint64_t> buckets_[kBuckets]{};
    std::atomic<std::uint64_t> sum_{0};
};

/// Process-global registry.  Lookup takes a mutex (cache the reference);
/// metric objects themselves are lock-free.
class Registry {
public:
    static Registry& instance();

    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name);

    /// Zero every registered metric (tests, fresh reports).  Registered
    /// objects survive, so cached references stay valid.
    void reset_values();

    /// Snapshot as {"counters": {...}, "gauges": {...}, "histograms": {...}}
    /// with names sorted for stable output; zero-valued metrics included.
    [[nodiscard]] Json to_json() const;

    /// Flat "name value" lines, sorted by name (for `stgcheck --metrics`).
    [[nodiscard]] std::string text_summary() const;

private:
    Registry() = default;
    struct Impl;
    Impl& impl() const;
};

/// Convenience accessors.
inline Counter& counter(std::string_view name) {
    return Registry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
    return Registry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name) {
    return Registry::instance().histogram(name);
}

}  // namespace stgcc::obs
