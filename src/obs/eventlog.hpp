// stgcc -- structured JSONL event log for the resident service
// (docs/OBSERVABILITY.md, docs/SERVICE.md).
//
// One line per event, each a self-contained JSON object:
//
//   {"ts_ms":1754650000123,"level":"info","event":"check.completed",
//    "trace":"9f2ab51c06d7e834","model_hash":"157ad...","cached":"memory",
//    "queue_delay_ms":0.2,"seconds":0.004,"exit":1}
//
// Design points:
//   * JSONL because the consumers are grep, jq and CI assertions -- not a
//     log database.  Every record carries a wall-clock `ts_ms`, a `level`
//     and an `event` name; everything else is caller fields.
//   * Level filtering happens before the record is rendered: a filtered
//     write costs one enum compare.
//   * Size-based rotation: when the live file would exceed `max_bytes`
//     after a write, it is renamed to `<path>.1` (replacing any previous
//     rotation) and a fresh file is started -- bounded disk, last ~2x
//     max_bytes of history retained.
//   * Thread-safe; a default-constructed (pathless) log drops everything
//     and `enabled()` is false, so call sites need no guards beyond the
//     level check they get for free.
//
// Trace ids: `generate_trace_id()` mints the 16-hex-digit ids that
// correlate a client invocation with its server-side records.  Clients
// mint one per request (stgcheck/stgbatch --connect), the wire protocol
// carries it, and stgd stamps it into spans, event-log records and
// response envelopes (docs/SERVICE.md).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace stgcc::obs {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// "debug" / "info" / "warn" / "error".
[[nodiscard]] const char* log_level_name(LogLevel level) noexcept;

/// Parse a level name (case-sensitive, the four names above); false on
/// anything else.
[[nodiscard]] bool parse_log_level(std::string_view text, LogLevel& out);

class EventLog {
public:
    /// A disabled log: every write is dropped.
    EventLog() = default;

    /// Log to `path`, dropping records below `min_level`, rotating to
    /// `<path>.1` when the file exceeds `max_bytes`.  An empty path
    /// disables the log.
    explicit EventLog(std::string path, LogLevel min_level = LogLevel::Info,
                      std::uint64_t max_bytes = 64u << 20);

    EventLog(const EventLog&) = delete;
    EventLog& operator=(const EventLog&) = delete;

    [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }
    [[nodiscard]] const std::string& path() const noexcept { return path_; }
    [[nodiscard]] LogLevel min_level() const noexcept { return min_level_; }

    /// Would a record at `level` be written?  (The write methods check
    /// this themselves; call sites only need it to skip expensive field
    /// construction.)
    [[nodiscard]] bool should_log(LogLevel level) const noexcept {
        return enabled() && static_cast<int>(level) >= static_cast<int>(min_level_);
    }

    /// Append one record: `fields` (an object; other kinds are replaced
    /// by an empty object) prefixed with ts_ms, level and event.  Returns
    /// false when filtered or on IO failure -- the caller's verification
    /// work must never depend on the log.
    bool write(LogLevel level, std::string_view event, Json fields);

    /// write(Info, ...) convenience.
    bool info(std::string_view event, Json fields) {
        return write(LogLevel::Info, event, std::move(fields));
    }

    /// Records written (post-filtering) since construction.
    [[nodiscard]] std::uint64_t records_written() const noexcept;

private:
    std::string path_;
    LogLevel min_level_ = LogLevel::Info;
    std::uint64_t max_bytes_ = 64u << 20;

    mutable std::mutex mu_;
    std::uint64_t bytes_ = 0;    ///< size of the live file
    std::uint64_t records_ = 0;
};

/// Mint a 16-hex-digit trace id (64 random bits; thread-local generator
/// seeded from std::random_device, the pid and the clock, so concurrent
/// clients do not collide).
[[nodiscard]] std::string generate_trace_id();

/// True iff `id` looks like a minted trace id (1..64 chars of
/// [a-zA-Z0-9_.-]) -- the server accepts client ids but refuses to stamp
/// unbounded or unprintable junk into its logs.
[[nodiscard]] bool plausible_trace_id(std::string_view id) noexcept;

}  // namespace stgcc::obs
