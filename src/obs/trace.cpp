#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace stgcc::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}

void set_enabled(bool on) {
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {
// Per-thread stack of open span indices; gives each begin_span its parent.
thread_local std::vector<std::uint32_t> t_open_spans;
}  // namespace

Tracer& Tracer::instance() {
    static Tracer tracer;
    return tracer;
}

void Tracer::clear() {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
    flows_.clear();
    tids_.clear();
    thread_names_.clear();
    next_flow_ = 0;
    epoch_.reset();
}

std::uint32_t Tracer::tid_locked() {
    return tids_
        .emplace(std::this_thread::get_id(),
                 static_cast<std::uint32_t>(tids_.size() + 1))
        .first->second;
}

void Tracer::set_thread_name(std::string name) {
    std::lock_guard<std::mutex> lock(mu_);
    thread_names_[tid_locked()] = std::move(name);
}

std::uint64_t Tracer::next_flow_id() {
    std::lock_guard<std::mutex> lock(mu_);
    return ++next_flow_;
}

void Tracer::flow(std::uint64_t id, bool begin) {
    std::lock_guard<std::mutex> lock(mu_);
    flows_.push_back(FlowRecord{id, epoch_.nanos(), tid_locked(), begin});
}

std::uint32_t Tracer::begin_span(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    SpanRecord rec;
    rec.name = std::string(name);
    rec.start_ns = epoch_.nanos();
    rec.parent = t_open_spans.empty() ? kNoSpan : t_open_spans.back();
    rec.depth = static_cast<std::uint32_t>(t_open_spans.size());
    rec.tid = tid_locked();
    const auto id = static_cast<std::uint32_t>(spans_.size());
    spans_.push_back(std::move(rec));
    t_open_spans.push_back(id);
    return id;
}

void Tracer::end_span(std::uint32_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= spans_.size()) return;
    spans_[id].end_ns = epoch_.nanos();
    spans_[id].open = false;
    // Normal RAII usage ends spans innermost-first; tolerate stray handles.
    if (!t_open_spans.empty() && t_open_spans.back() == id)
        t_open_spans.pop_back();
    else
        t_open_spans.erase(
            std::remove(t_open_spans.begin(), t_open_spans.end(), id),
            t_open_spans.end());
}

void Tracer::add_attr(std::uint32_t id, std::string_view key, Json value) {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= spans_.size()) return;
    spans_[id].attrs.emplace_back(std::string(key), std::move(value));
}

std::size_t Tracer::num_spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
}

std::vector<SpanRecord> Tracer::snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
}

std::vector<FlowRecord> Tracer::flows() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flows_;
}

std::string Tracer::chrome_trace_json() const {
    const std::vector<SpanRecord> spans = snapshot();
    const std::vector<FlowRecord> flow_events = flows();
    // Every tid that appears anywhere gets a thread_name metadata event up
    // front (registered name, else "thread-N"), sorted by tid so Perfetto
    // rows are stably labelled and the export is deterministic given the
    // recorded data.
    std::map<std::uint32_t, std::string> names;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const SpanRecord& s : spans_) names.emplace(s.tid, "");
        for (const FlowRecord& f : flows_) names.emplace(f.tid, "");
        for (const auto& [tid, name] : thread_names_) names[tid] = name;
    }
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    char buf[64];
    for (auto& [tid, name] : names) {
        if (name.empty()) name = "thread-" + std::to_string(tid);
        if (!first) out += ",\n";
        first = false;
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":%u,\"args\":{\"name\":\"",
                      tid);
        out += buf;
        out += Json::escape(name) + "\"}}";
    }
    for (const SpanRecord& s : spans) {
        if (!first) out += ",\n";
        first = false;
        out += "{\"name\":\"" + Json::escape(s.name) +
               "\",\"cat\":\"stgcc\",\"ph\":\"X\"";
        std::snprintf(buf, sizeof buf, ",\"ts\":%.3f",
                      static_cast<double>(s.start_ns) / 1e3);
        out += buf;
        const std::uint64_t end = s.open ? s.start_ns : s.end_ns;
        std::snprintf(buf, sizeof buf, ",\"dur\":%.3f",
                      static_cast<double>(end - s.start_ns) / 1e3);
        out += buf;
        std::snprintf(buf, sizeof buf, ",\"pid\":1,\"tid\":%u", s.tid);
        out += buf;
        if (!s.attrs.empty()) {
            Json args = Json::object();
            for (const auto& [k, v] : s.attrs) args.set(k, v);
            out += ",\"args\":" + args.dump();
        }
        out += "}";
    }
    for (const FlowRecord& f : flow_events) {
        if (!first) out += ",\n";
        first = false;
        // "s" at the submit site, "f" with bp=e (bind to enclosing slice)
        // where the task ran; same id links the arrow across thread rows.
        out += "{\"name\":\"sched.submit\",\"cat\":\"stgcc\",\"ph\":\"";
        out += f.begin ? "s" : "f";
        out += '"';
        if (!f.begin) out += ",\"bp\":\"e\"";
        std::snprintf(buf, sizeof buf, ",\"id\":%llu,\"ts\":%.3f",
                      static_cast<unsigned long long>(f.id),
                      static_cast<double>(f.ts_ns) / 1e3);
        out += buf;
        std::snprintf(buf, sizeof buf, ",\"pid\":1,\"tid\":%u}", f.tid);
        out += buf;
    }
    out += "\n]}\n";
    return out;
}

namespace {

std::string fmt_duration(std::uint64_t ns) {
    char buf[32];
    const double s = static_cast<double>(ns) / 1e9;
    if (s < 1e-3)
        std::snprintf(buf, sizeof buf, "%.1fus", s * 1e6);
    else if (s < 1.0)
        std::snprintf(buf, sizeof buf, "%.2fms", s * 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.3fs", s);
    return buf;
}

}  // namespace

std::string Tracer::tree_summary() const {
    const std::vector<SpanRecord> spans = snapshot();
    std::string out;
    for (const SpanRecord& s : spans) {
        out.append(2 * static_cast<std::size_t>(s.depth), ' ');
        out += s.name;
        out += "  ";
        out += s.open ? "(open)"
                      : fmt_duration(s.end_ns - s.start_ns);
        for (const auto& [k, v] : s.attrs) {
            out += "  " + k + "=" + v.dump();
        }
        out += "\n";
    }
    return out;
}

}  // namespace stgcc::obs
