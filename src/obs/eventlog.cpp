#include "obs/eventlog.hpp"

#include <chrono>
#include <cstdio>
#include <random>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace stgcc::obs {

const char* log_level_name(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::Debug: return "debug";
        case LogLevel::Info: return "info";
        case LogLevel::Warn: return "warn";
        case LogLevel::Error: return "error";
    }
    return "info";
}

bool parse_log_level(std::string_view text, LogLevel& out) {
    if (text == "debug") out = LogLevel::Debug;
    else if (text == "info") out = LogLevel::Info;
    else if (text == "warn") out = LogLevel::Warn;
    else if (text == "error") out = LogLevel::Error;
    else return false;
    return true;
}

EventLog::EventLog(std::string path, LogLevel min_level,
                   std::uint64_t max_bytes)
    : path_(std::move(path)), min_level_(min_level), max_bytes_(max_bytes) {
    if (max_bytes_ == 0) max_bytes_ = 1;  // rotate every record; never divide
    if (path_.empty()) return;
    // Resume an existing file's size so rotation accounting survives a
    // daemon restart pointing at the same path.
    if (std::FILE* f = std::fopen(path_.c_str(), "rb")) {
        std::fseek(f, 0, SEEK_END);
        const long size = std::ftell(f);
        if (size > 0) bytes_ = static_cast<std::uint64_t>(size);
        std::fclose(f);
    }
}

bool EventLog::write(LogLevel level, std::string_view event, Json fields) {
    if (!should_log(level)) return false;
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    const auto ts_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
    Json record = Json::object()
                      .set("ts_ms", static_cast<std::int64_t>(ts_ms))
                      .set("level", log_level_name(level))
                      .set("event", std::string(event));
    if (fields.kind() == Json::Kind::Object) {
        for (std::size_t i = 0; i < fields.size(); ++i) {
            const auto& [key, value] = fields.member(i);
            record.set(key, value);
        }
    }
    std::string line = record.dump();
    line += '\n';

    std::lock_guard<std::mutex> lock(mu_);
    if (bytes_ > 0 && bytes_ + line.size() > max_bytes_) {
        // Rotate: the live file becomes <path>.1 (clobbering the previous
        // rotation) and the next open starts fresh.
        const std::string rotated = path_ + ".1";
        std::remove(rotated.c_str());
        std::rename(path_.c_str(), rotated.c_str());
        bytes_ = 0;
    }
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    if (!f) return false;
    const std::size_t n = std::fwrite(line.data(), 1, line.size(), f);
    std::fclose(f);
    if (n != line.size()) return false;
    bytes_ += line.size();
    ++records_;
    return true;
}

std::uint64_t EventLog::records_written() const noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
}

std::string generate_trace_id() {
    thread_local std::mt19937_64 rng = [] {
        std::random_device rd;
        std::seed_seq seed{
            rd(), rd(),
            static_cast<unsigned>(
                std::chrono::steady_clock::now().time_since_epoch().count()),
#if defined(__unix__) || defined(__APPLE__)
            static_cast<unsigned>(::getpid()),
#endif
            static_cast<unsigned>(std::hash<std::thread::id>{}(
                std::this_thread::get_id()))};
        return std::mt19937_64(seed);
    }();
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(rng()));
    return std::string(buf, 16);
}

bool plausible_trace_id(std::string_view id) noexcept {
    if (id.empty() || id.size() > 64) return false;
    for (const char c : id) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                        c == '-';
        if (!ok) return false;
    }
    return true;
}

}  // namespace stgcc::obs
