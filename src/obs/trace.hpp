// stgcc -- span tracer: RAII scoped spans with nesting, steady-clock
// timestamps and key=value attributes.
//
// Design constraints (see docs/OBSERVABILITY.md):
//   * Zero dependencies; the whole subsystem is this library.
//   * Disabled by default.  A disabled Span costs one relaxed atomic load
//     (the global enable flag) plus one steady_clock read so it can still
//     serve as the stopwatch behind CheckStats::seconds; per-iteration
//     instrumentation in hot loops must be guarded by `if (obs::enabled())`
//     so it costs exactly one branch when off.
//   * Recording is process-global and thread-safe; span nesting is tracked
//     per thread.
//
// Exports: the Chrome trace-event JSON format (load the file in
// chrome://tracing or https://ui.perfetto.dev) and an indented
// human-readable tree summary.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "obs/json.hpp"
#include "util/stopwatch.hpp"

namespace stgcc::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// Master switch for the observability subsystem.  Hot paths check this and
/// nothing else.
inline bool enabled() noexcept {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on);

inline constexpr std::uint32_t kNoSpan = 0xffffffffu;

/// One recorded span (or instant) in the tracer's buffer.
struct SpanRecord {
    std::string name;
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    std::uint32_t parent = kNoSpan;  ///< index of the enclosing span
    std::uint32_t depth = 0;         ///< nesting depth within its thread
    std::uint32_t tid = 0;           ///< small dense thread number
    bool open = true;                ///< still awaiting end_span
    std::vector<std::pair<std::string, Json>> attrs;
};

/// One flow step: an "s" (begin, at submission) or "f" (end, at execution)
/// Chrome-trace flow event tying a task's submit site to the worker that
/// ran it, across thread rows.
struct FlowRecord {
    std::uint64_t id = 0;    ///< link id shared by the s/f pair
    std::uint64_t ts_ns = 0;
    std::uint32_t tid = 0;
    bool begin = true;       ///< true = "s" (submit), false = "f" (execute)
};

/// Process-global span collector.  All methods are thread-safe.
class Tracer {
public:
    static Tracer& instance();

    /// Drop all recorded spans (the per-thread nesting stacks of live Spans
    /// are untouched; do not clear while spans are open).
    void clear();

    std::uint32_t begin_span(std::string_view name);
    void end_span(std::uint32_t id);
    void add_attr(std::uint32_t id, std::string_view key, Json value);

    /// Register a stable display name for the calling thread; exported as a
    /// Chrome-trace "thread_name" metadata event so Perfetto rows read
    /// "worker-3" instead of a bare tid.  Idempotent; last write wins.
    void set_thread_name(std::string name);

    /// Allocate a fresh flow-link id (never 0).
    [[nodiscard]] std::uint64_t next_flow_id();
    /// Record one side of a flow link on the calling thread.
    void flow(std::uint64_t id, bool begin);

    [[nodiscard]] std::size_t num_spans() const;
    [[nodiscard]] std::vector<SpanRecord> snapshot() const;
    [[nodiscard]] std::vector<FlowRecord> flows() const;

    /// Chrome trace-event JSON ("X" complete events, microsecond
    /// timestamps), one event per line for stable golden-file diffs.
    [[nodiscard]] std::string chrome_trace_json() const;

    /// Indented human-readable tree with durations and attributes.
    [[nodiscard]] std::string tree_summary() const;

private:
    Tracer() = default;

    /// Dense tid of the calling thread, assigning the next number on first
    /// use.  Caller holds mu_.
    std::uint32_t tid_locked();

    mutable std::mutex mu_;
    std::vector<SpanRecord> spans_;
    std::vector<FlowRecord> flows_;
    std::unordered_map<std::thread::id, std::uint32_t> tids_;
    std::unordered_map<std::uint32_t, std::string> thread_names_;
    std::uint64_t next_flow_ = 0;
    Stopwatch epoch_;
};

/// RAII scoped span.  When tracing is disabled the constructor reduces to
/// the flag check plus starting the member stopwatch, and attrs are no-ops.
/// `seconds()` always works, so a Span doubles as the timer behind the
/// legacy CheckStats / SolveStats fields.
class Span {
public:
    explicit Span(const char* name) {
        if (enabled()) id_ = Tracer::instance().begin_span(name);
    }
    ~Span() { finish(); }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// End the span early (idempotent).
    void finish() {
        if (id_ != kNoSpan) {
            Tracer::instance().end_span(id_);
            id_ = kNoSpan;
        }
    }

    /// Wall-clock seconds since construction; valid regardless of tracing.
    [[nodiscard]] double seconds() const { return watch_.seconds(); }

    [[nodiscard]] bool recording() const noexcept { return id_ != kNoSpan; }

    void attr(const char* key, std::string_view value) {
        if (id_ != kNoSpan)
            Tracer::instance().add_attr(id_, key, Json(std::string(value)));
    }
    void attr(const char* key, const char* value) {
        attr(key, std::string_view(value));
    }
    void attr(const char* key, bool value) {
        if (id_ != kNoSpan) Tracer::instance().add_attr(id_, key, Json(value));
    }
    template <class T,
              std::enable_if_t<std::is_arithmetic_v<T> && !std::is_same_v<T, bool>,
                               int> = 0>
    void attr(const char* key, T value) {
        if (id_ != kNoSpan) Tracer::instance().add_attr(id_, key, Json(value));
    }

private:
    Stopwatch watch_;
    std::uint32_t id_ = kNoSpan;
};

}  // namespace stgcc::obs
