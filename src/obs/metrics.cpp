#include "obs/metrics.hpp"

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

namespace stgcc::obs {

namespace detail {
namespace {
std::atomic<unsigned>& shard_count() noexcept {
    // Default: one shard per hardware thread -- the writer population a
    // process can sustain without a pool.  Pool construction raises it to
    // the actual worker count (never past capacity).
    static std::atomic<unsigned> count{[] {
        const unsigned hw = std::thread::hardware_concurrency();
        const unsigned base = hw == 0 ? 1 : hw;
        return base < kMaxCounterShards ? base : kMaxCounterShards;
    }()};
    return count;
}
}  // namespace

unsigned counter_shards() noexcept {
    return shard_count().load(std::memory_order_relaxed);
}

void raise_counter_shards(unsigned n) noexcept {
    if (n > kMaxCounterShards) n = kMaxCounterShards;
    if (n == 0) n = 1;
    auto& count = shard_count();
    unsigned cur = count.load(std::memory_order_relaxed);
    while (n > cur &&
           !count.compare_exchange_weak(cur, n, std::memory_order_relaxed)) {
    }
}

unsigned counter_shard() noexcept {
    // Dense thread enumeration: each thread claims the next slot on first
    // use and keeps it for its lifetime, so as many concurrent threads as
    // the effective shard count write fully contention-free.  The modulo
    // uses the count at claim time; `Counter::value()` sums the full
    // capacity, so later raises stay correct for already-claimed slots.
    static std::atomic<unsigned> next{0};
    thread_local const unsigned slot =
        next.fetch_add(1, std::memory_order_relaxed) % counter_shards();
    return slot;
}
}  // namespace detail

std::uint64_t Histogram::count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
}

double Histogram::quantile(double q) const noexcept {
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const std::uint64_t total = count();
    if (total == 0) return 0.0;
    // Rank of the target sample (1-based), then walk buckets to find it.
    const double target = q * static_cast<double>(total);
    double seen = 0.0;
    for (int i = 0; i < kBuckets; ++i) {
        const auto in_bucket =
            static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
        if (in_bucket == 0.0) continue;
        if (seen + in_bucket >= target) {
            if (i == 0) return 0.0;  // bucket 0 holds exactly {0}
            // [lo, hi] = [2^(i-1), 2^i - 1]; hi computed in double so the
            // top bucket (i == 64) needs no 1 << 64.
            const double lo = static_cast<double>(std::uint64_t{1} << (i - 1));
            const double hi = lo * 2.0 - 1.0;
            const double frac = (target - seen) / in_bucket;
            return lo + frac * (hi - lo);
        }
        seen += in_bucket;
    }
    return static_cast<double>(~std::uint64_t{0});
}

void Histogram::reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

// std::map keeps names sorted for stable exports; unique_ptr keeps metric
// addresses stable under rehash-free node insertion either way.
struct Registry::Impl {
    std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

namespace {
// The documented stgcc instrument inventory (docs/OBSERVABILITY.md).
// Pre-registered so every snapshot carries the full set of well-known
// names, zero-valued when the owning phase did not run — consumers of
// `stgcheck --json` can rely on the keys being present.  Modules may
// still register ad-hoc metrics on first use.
constexpr const char* kBuiltinCounters[] = {
    "unfold.runs",      "unfold.events",      "unfold.conditions",
    "unfold.cutoffs",   "bb.solves",          "bb.nodes",
    "bb.leaves",        "bb.propagations",    "compat.solves",
    "compat.nodes",     "compat.leaves",      "compat.signal_prunes",
    "compat.closure_prunes", "sg.builds",     "sg.states",
    "sg.edges",         "sched.tasks_submitted", "sched.tasks_executed",
    "sched.tasks_stolen", "sched.steal_failures", "sched.worker_busy_ns",
    "sched.parks",        "sched.park_ns",        "sched.injector_contention",
    "cache.artifacts.built",  "cache.clauses.recorded",
    "cache.clauses.replayed", "cache.clauses.pruned_nodes",
    "cache.certificates.csc_from_usc",
    "cache.result.hits",      "cache.result.misses",
    "cache.result.stores",    "cache.result.evicted",
    "sched.workspace_reuse",
    // Reduction pass manager (docs/REDUCTIONS.md).
    "stg.reduce.runs",        "stg.reduce.places_removed",
    "stg.reduce.transitions_removed",
    "cache.result.semantic_hits",
};
constexpr const char* kBuiltinGauges[] = {
    "unfold.pe_queue_peak", "unfold.co_pairs", "sg.hash_load_permille",
    "sched.workers",        "mem.arena_bytes", "mem.arena_peak_bytes",
    "sched.critical_path_ns",
    // Service liveness gauges, refreshed by stgd before every stats
    // snapshot and /metrics scrape (docs/SERVICE.md).
    "svc.open_connections", "mem.rss_bytes"};
constexpr const char* kBuiltinHistograms[] = {
    "unfold.pe_queue_depth", "sched.queue_delay_ns", "sched.task_duration_ns",
    "sched.steal_latency_ns", "compat.depth"};
}  // namespace

Registry::Impl& Registry::impl() const {
    static Impl& impl = []() -> Impl& {
        static Impl i;
        for (const char* n : kBuiltinCounters)
            i.counters.emplace(n, std::make_unique<Counter>());
        for (const char* n : kBuiltinGauges)
            i.gauges.emplace(n, std::make_unique<Gauge>());
        for (const char* n : kBuiltinHistograms)
            i.histograms.emplace(n, std::make_unique<Histogram>());
        return i;
    }();
    return impl;
}

Registry& Registry::instance() {
    static Registry registry;
    return registry;
}

Counter& Registry::counter(std::string_view name) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    auto it = im.counters.find(name);
    if (it == im.counters.end())
        it = im.counters
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    auto it = im.gauges.find(name);
    if (it == im.gauges.end())
        it = im.gauges.emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    auto it = im.histograms.find(name);
    if (it == im.histograms.end())
        it = im.histograms
                 .emplace(std::string(name), std::make_unique<Histogram>())
                 .first;
    return *it->second;
}

void Registry::reset_values() {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    for (auto& [name, c] : im.counters) c->reset();
    for (auto& [name, g] : im.gauges) g->reset();
    for (auto& [name, h] : im.histograms) h->reset();
}

Json Registry::to_json() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    Json counters = Json::object();
    for (const auto& [name, c] : im.counters) counters.set(name, c->value());
    Json gauges = Json::object();
    for (const auto& [name, g] : im.gauges) gauges.set(name, g->value());
    Json histograms = Json::object();
    for (const auto& [name, h] : im.histograms) {
        Json hist = Json::object();
        hist.set("count", h->count());
        hist.set("sum", h->sum());
        hist.set("p50", h->quantile(0.50));
        hist.set("p90", h->quantile(0.90));
        hist.set("p99", h->quantile(0.99));
        Json buckets = Json::array();
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            if (h->bucket(i) == 0) continue;
            buckets.push(Json::object()
                             .set("le", Histogram::bucket_limit(i))
                             .set("count", h->bucket(i)));
        }
        hist.set("buckets", std::move(buckets));
        histograms.set(name, std::move(hist));
    }
    return Json::object()
        .set("counters", std::move(counters))
        .set("gauges", std::move(gauges))
        .set("histograms", std::move(histograms));
}

std::string Registry::text_summary() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    std::string out;
    for (const auto& [name, c] : im.counters)
        out += name + " " + std::to_string(c->value()) + "\n";
    for (const auto& [name, g] : im.gauges)
        out += name + " " + std::to_string(g->value()) + "\n";
    char q[96];
    for (const auto& [name, h] : im.histograms) {
        std::snprintf(q, sizeof q, " p50=%.1f p90=%.1f p99=%.1f",
                      h->quantile(0.50), h->quantile(0.90), h->quantile(0.99));
        out += name + " count=" + std::to_string(h->count()) +
               " sum=" + std::to_string(h->sum()) + q + "\n";
    }
    return out;
}

}  // namespace stgcc::obs
