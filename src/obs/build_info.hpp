// stgcc -- build provenance, embedded at configure time (src/CMakeLists.txt
// configures build_info.cpp.in).
//
// Every surface that emits a verification verdict or serves telemetry also
// identifies the binary that produced it: `stgcheck --json` carries a
// "build" object, the stgd `stats` op reports `server.build`, and the
// metrics listener serves it at `/buildinfo`.  Without this, a regression
// report from a contest run or a scraped dashboard cannot be tied back to
// a commit and toolchain.
#pragma once

#include <string_view>

#include "obs/json.hpp"

namespace stgcc::obs {

/// `git describe --always --dirty` at configure time ("unknown" outside a
/// git checkout).
[[nodiscard]] std::string_view build_git_describe() noexcept;

/// Compiler id and version, e.g. "GNU 13.2.0".
[[nodiscard]] std::string_view build_compiler() noexcept;

/// CMake build type, e.g. "RelWithDebInfo".
[[nodiscard]] std::string_view build_type() noexcept;

/// STGCC_SANITIZE value, e.g. "OFF", "address" or "tsan".
[[nodiscard]] std::string_view build_sanitize() noexcept;

/// {"git":..,"compiler":..,"build_type":..,"sanitize":..,
///  "cache_version":..,"report_schema":..} -- byte-stable per binary.
[[nodiscard]] Json build_info();

}  // namespace stgcc::obs
