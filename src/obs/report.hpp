// stgcc -- machine-readable report plumbing shared by `stgcheck` and the
// bench harness.
//
// A report is an obs::Json document with a small fixed envelope
// ({"tool", "schema_version", ...payload}).  Benches write
// `BENCH_<name>.json` files (into $STGCC_BENCH_JSON_DIR or the working
// directory) so the perf trajectory is trackable across PRs; `stgcheck
// --json` writes a verification report including the metrics snapshot.
#pragma once

#include <string>

#include "obs/json.hpp"

namespace stgcc::obs {

inline constexpr int kReportSchemaVersion = 1;

/// Wrap `payload` members into the standard report envelope.
[[nodiscard]] Json make_report(const std::string& tool, Json payload);

/// Write the tracer's Chrome trace-event JSON to `path`.  Returns false on
/// IO failure.
bool write_chrome_trace(const std::string& path);

/// Write `BENCH_<name>.json` with the standard envelope.  The directory is
/// $STGCC_BENCH_JSON_DIR when set, else the current working directory.
/// Returns the path written, or an empty string on IO failure.
std::string write_bench_report(const std::string& name, Json payload);

}  // namespace stgcc::obs
