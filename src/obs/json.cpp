#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace stgcc::obs {

std::string Json::escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(c) & 0xff);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

namespace {

void append_double(std::string& out, double v) {
    if (!std::isfinite(v)) {  // JSON has no Inf/NaN
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
    switch (kind_) {
        case Kind::Null: out += "null"; break;
        case Kind::Bool: out += bool_ ? "true" : "false"; break;
        case Kind::Int: out += std::to_string(int_); break;
        case Kind::Uint: out += std::to_string(uint_); break;
        case Kind::Double: append_double(out, dbl_); break;
        case Kind::String:
            out += '"';
            out += escape(str_);
            out += '"';
            break;
        case Kind::Array: {
            out += '[';
            for (std::size_t i = 0; i < items_.size(); ++i) {
                if (i) out += ',';
                append_newline_indent(out, indent, depth + 1);
                items_[i].dump_to(out, indent, depth + 1);
            }
            if (!items_.empty()) append_newline_indent(out, indent, depth);
            out += ']';
            break;
        }
        case Kind::Object: {
            out += '{';
            for (std::size_t i = 0; i < members_.size(); ++i) {
                if (i) out += ',';
                append_newline_indent(out, indent, depth + 1);
                out += '"';
                out += escape(members_[i].first);
                out += indent > 0 ? "\": " : "\":";
                members_[i].second.dump_to(out, indent, depth + 1);
            }
            if (!members_.empty()) append_newline_indent(out, indent, depth);
            out += '}';
            break;
        }
    }
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

bool save_json(const std::string& path, const Json& j, int indent) {
    std::ofstream out(path);
    if (!out) return false;
    out << j.dump(indent) << "\n";
    return static_cast<bool>(out);
}

}  // namespace stgcc::obs
