#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace stgcc::obs {

std::string Json::escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(c) & 0xff);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

namespace {

void append_double(std::string& out, double v) {
    if (!std::isfinite(v)) {  // JSON has no Inf/NaN
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
    switch (kind_) {
        case Kind::Null: out += "null"; break;
        case Kind::Bool: out += bool_ ? "true" : "false"; break;
        case Kind::Int: out += std::to_string(int_); break;
        case Kind::Uint: out += std::to_string(uint_); break;
        case Kind::Double: append_double(out, dbl_); break;
        case Kind::String:
            out += '"';
            out += escape(str_);
            out += '"';
            break;
        case Kind::Array: {
            out += '[';
            for (std::size_t i = 0; i < items_.size(); ++i) {
                if (i) out += ',';
                append_newline_indent(out, indent, depth + 1);
                items_[i].dump_to(out, indent, depth + 1);
            }
            if (!items_.empty()) append_newline_indent(out, indent, depth);
            out += ']';
            break;
        }
        case Kind::Object: {
            out += '{';
            for (std::size_t i = 0; i < members_.size(); ++i) {
                if (i) out += ',';
                append_newline_indent(out, indent, depth + 1);
                out += '"';
                out += escape(members_[i].first);
                out += indent > 0 ? "\": " : "\":";
                members_[i].second.dump_to(out, indent, depth + 1);
            }
            if (!members_.empty()) append_newline_indent(out, indent, depth);
            out += '}';
            break;
        }
    }
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

namespace {

/// Recursive-descent JSON parser over a character range.  Every production
/// returns false on malformed input and the caller unwinds; position is
/// only meaningful while the parse is still succeeding.
class Parser {
public:
    Parser(const char* p, const char* end) : p_(p), end_(end) {}

    bool parse_document(Json& out) {
        skip_ws();
        if (!parse_value(out, 0)) return false;
        skip_ws();
        return p_ == end_;  // trailing garbage is an error
    }

private:
    static constexpr int kMaxDepth = 128;

    void skip_ws() {
        while (p_ != end_ &&
               (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
            ++p_;
    }

    bool literal(const char* word) {
        const char* q = p_;
        for (; *word; ++word, ++q)
            if (q == end_ || *q != *word) return false;
        p_ = q;
        return true;
    }

    bool parse_value(Json& out, int depth) {
        if (depth > kMaxDepth || p_ == end_) return false;
        switch (*p_) {
            case 'n': return literal("null") && (out = Json{}, true);
            case 't': return literal("true") && (out = Json(true), true);
            case 'f': return literal("false") && (out = Json(false), true);
            case '"': {
                std::string s;
                if (!parse_string(s)) return false;
                out = Json(std::move(s));
                return true;
            }
            case '[': return parse_array(out, depth);
            case '{': return parse_object(out, depth);
            default: return parse_number(out);
        }
    }

    bool parse_array(Json& out, int depth) {
        ++p_;  // '['
        out = Json::array();
        skip_ws();
        if (p_ != end_ && *p_ == ']') return ++p_, true;
        while (true) {
            Json item;
            skip_ws();
            if (!parse_value(item, depth + 1)) return false;
            out.push(std::move(item));
            skip_ws();
            if (p_ == end_) return false;
            if (*p_ == ']') return ++p_, true;
            if (*p_ != ',') return false;
            ++p_;
        }
    }

    bool parse_object(Json& out, int depth) {
        ++p_;  // '{'
        out = Json::object();
        skip_ws();
        if (p_ != end_ && *p_ == '}') return ++p_, true;
        while (true) {
            skip_ws();
            std::string key;
            if (p_ == end_ || *p_ != '"' || !parse_string(key)) return false;
            skip_ws();
            if (p_ == end_ || *p_ != ':') return false;
            ++p_;
            skip_ws();
            Json value;
            if (!parse_value(value, depth + 1)) return false;
            out.set(std::move(key), std::move(value));
            skip_ws();
            if (p_ == end_) return false;
            if (*p_ == '}') return ++p_, true;
            if (*p_ != ',') return false;
            ++p_;
        }
    }

    bool parse_string(std::string& out) {
        ++p_;  // opening quote
        while (p_ != end_ && *p_ != '"') {
            const unsigned char c = static_cast<unsigned char>(*p_);
            if (c < 0x20) return false;  // raw control character
            if (c != '\\') {
                out += *p_++;
                continue;
            }
            if (++p_ == end_) return false;
            switch (*p_) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        if (++p_ == end_) return false;
                        const char h = *p_;
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    append_utf8(out, cp);
                    break;
                }
                default: return false;
            }
            ++p_;
        }
        if (p_ == end_) return false;
        ++p_;  // closing quote
        return true;
    }

    static void append_utf8(std::string& out, unsigned cp) {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool parse_number(Json& out) {
        const char* start = p_;
        bool negative = false, fractional = false;
        if (p_ != end_ && *p_ == '-') {
            negative = true;
            ++p_;
        }
        while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                              *p_ == 'e' || *p_ == 'E' || *p_ == '+' ||
                              *p_ == '-')) {
            if (*p_ == '.' || *p_ == 'e' || *p_ == 'E') fractional = true;
            ++p_;
        }
        if (p_ == start || (negative && p_ == start + 1)) return false;
        const std::string tok(start, p_);
        try {
            if (fractional)
                out = Json(std::stod(tok));
            else if (negative)
                out = Json(std::stoll(tok));
            else
                out = Json(std::stoull(tok));
        } catch (const std::exception&) {
            return false;  // overflow or malformed digits
        }
        return true;
    }

    const char* p_;
    const char* end_;
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text) {
    Json out;
    Parser parser(text.data(), text.data() + text.size());
    if (!parser.parse_document(out)) return std::nullopt;
    return out;
}

bool save_json(const std::string& path, const Json& j, int indent) {
    std::ofstream out(path);
    if (!out) return false;
    out << j.dump(indent) << "\n";
    return static_cast<bool>(out);
}

}  // namespace stgcc::obs
