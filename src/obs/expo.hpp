// stgcc -- live-telemetry exposition: Prometheus text rendering of the
// metrics registry and a sliding-window aggregator for rates and latency
// quantiles (docs/OBSERVABILITY.md).
//
// The registry's counters, gauges and histograms are process-lifetime
// totals: perfect for a final report, useless for "is the daemon melting
// *right now*".  This header adds the two missing pieces:
//
//   * `prometheus_text()` renders a `Registry::to_json()` snapshot in the
//     Prometheus text exposition format (version 0.0.4) -- counters with a
//     `_total` suffix, gauges verbatim, histograms as cumulative
//     `_bucket{le=...}` series plus `_sum`/`_count` and a companion
//     `<name>_summary{quantile=...}` family carrying the registry's
//     p50/p90/p99 estimates.  Rendering from the JSON snapshot (names
//     sorted, zero metrics included) makes the output byte-stable for a
//     given set of values -- golden-tested, CI-scraped.
//
//   * `RollingWindow` buckets samples into one-second slots of a fixed
//     ring, so a reader can ask for the event *rate* and the latency
//     *quantiles* over the last 1/10/60 seconds instead of since process
//     start.  Time is an explicit nanosecond argument on every call: the
//     server feeds its uptime clock, the tests feed a synthetic one, and
//     the class itself never reads a clock (deterministic by construction).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace stgcc::obs {

/// Sliding-window aggregator: per-second slots in a fixed ring, each slot
/// holding a sample count, sum and log2-bucket histogram (same bucket
/// geometry as obs::Histogram).  All methods are thread-safe (one mutex;
/// this is request-rate bookkeeping, not a solver hot path).  Slots older
/// than the ring capacity are reclaimed lazily, so a window query never
/// sees stale seconds.
class RollingWindow {
public:
    /// Ring capacity in seconds; the longest supported window.
    static constexpr std::uint64_t kSlots = 64;
    /// The standard window set exposed by stgd and stgtop.
    static constexpr std::uint64_t kWindows[3] = {1, 10, 60};

    /// Record one sample (e.g. a request latency in nanoseconds) at
    /// absolute time `now_ns` (any monotonic origin; mixing origins is the
    /// caller's bug).
    void record(std::uint64_t value, std::uint64_t now_ns);

    /// Samples recorded in the last `window_s` seconds as of `now_ns`.
    [[nodiscard]] std::uint64_t count(std::uint64_t window_s,
                                      std::uint64_t now_ns) const;

    /// Sum of samples in the window.
    [[nodiscard]] std::uint64_t sum(std::uint64_t window_s,
                                    std::uint64_t now_ns) const;

    /// Events per second over the window (count / window_s).
    [[nodiscard]] double rate(std::uint64_t window_s,
                              std::uint64_t now_ns) const;

    /// Quantile estimate over the window's merged log2 buckets (same
    /// interpolation and 2x relative error bound as Histogram::quantile).
    /// Returns 0 for an empty window.
    [[nodiscard]] double quantile(std::uint64_t window_s, double q,
                                  std::uint64_t now_ns) const;

    /// {"rate_1s":..,"rate_10s":..,"rate_60s":..,"p50":..,"p90":..,
    ///  "p99":..} -- the rates over the standard windows plus quantiles
    /// over the longest one; the shape stgd's stats op and stgtop share.
    [[nodiscard]] Json to_json(std::uint64_t now_ns) const;

private:
    struct Slot {
        std::uint64_t sec = kNoSec;
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint32_t buckets[Histogram::kBuckets] = {};
    };
    static constexpr std::uint64_t kNoSec = ~std::uint64_t{0};

    /// Visit every live slot inside the window (caller holds mu_).
    template <class Fn>
    void for_window(std::uint64_t window_s, std::uint64_t now_ns,
                    Fn&& fn) const {
        if (window_s == 0) return;
        if (window_s > kSlots) window_s = kSlots;
        const std::uint64_t now_s = now_ns / 1'000'000'000u;
        for (const Slot& s : slots_) {
            if (s.sec == kNoSec || s.sec > now_s) continue;
            if (now_s - s.sec < window_s) fn(s);
        }
    }

    mutable std::mutex mu_;
    Slot slots_[kSlots];
};

/// Render a `Registry::to_json()` snapshot as Prometheus text exposition
/// (format 0.0.4).  Metric names are prefixed with `<prefix>_` and
/// sanitised (dots and other non-[a-zA-Z0-9_] become '_'); counters gain
/// the conventional `_total` suffix.  Histograms render their cumulative
/// buckets (upper bounds are the registry's inclusive log2 limits) ending
/// with `le="+Inf"`, then `_sum` and `_count`, then a `<name>_summary`
/// family with the snapshot's p50/p90/p99.  Output is byte-stable for a
/// given snapshot: names arrive sorted from the registry and doubles are
/// formatted with "%g".
[[nodiscard]] std::string prometheus_text(const Json& snapshot,
                                          std::string_view prefix = "stgcc");

/// Snapshot the process-global registry and render it.
[[nodiscard]] std::string prometheus_text();

/// Prometheus-legal metric name: `<prefix>_<name>` with every character
/// outside [a-zA-Z0-9_] replaced by '_'.
[[nodiscard]] std::string prometheus_name(std::string_view prefix,
                                          std::string_view name);

/// Resident-set size of the calling process in bytes (0 where /proc is
/// unavailable).  Feeds the `mem.rss_bytes` gauge before a scrape.
[[nodiscard]] std::uint64_t process_rss_bytes();

}  // namespace stgcc::obs
