// stgcc -- minimal ordered JSON value tree for the observability layer.
//
// The repo deliberately carries no third-party JSON dependency; this small
// tree type covers everything the tracer, the metrics registry, the
// `stgcheck --json` report, the bench harness and the on-disk result cache
// (src/cache/) need: build a value, `dump()` it, `parse()` it back.  Object
// keys keep insertion order so exported reports and golden files are
// byte-stable across runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace stgcc::obs {

class Json {
public:
    enum class Kind { Null, Bool, Int, Uint, Double, String, Array, Object };

    Json() : kind_(Kind::Null) {}
    Json(bool v) : kind_(Kind::Bool), bool_(v) {}
    Json(const char* v) : kind_(Kind::String), str_(v) {}
    Json(std::string v) : kind_(Kind::String), str_(std::move(v)) {}

    /// Numeric constructor; picks Int / Uint / Double by static type.
    template <class T,
              std::enable_if_t<std::is_arithmetic_v<T> && !std::is_same_v<T, bool>,
                               int> = 0>
    Json(T v) {
        if constexpr (std::is_floating_point_v<T>) {
            kind_ = Kind::Double;
            dbl_ = static_cast<double>(v);
        } else if constexpr (std::is_signed_v<T>) {
            kind_ = Kind::Int;
            int_ = static_cast<std::int64_t>(v);
        } else {
            kind_ = Kind::Uint;
            uint_ = static_cast<std::uint64_t>(v);
        }
    }

    [[nodiscard]] static Json object() {
        Json j;
        j.kind_ = Kind::Object;
        return j;
    }
    [[nodiscard]] static Json array() {
        Json j;
        j.kind_ = Kind::Array;
        return j;
    }

    [[nodiscard]] Kind kind() const noexcept { return kind_; }

    // Value accessors.  Wrong-kind access returns the type's default value
    // (consumers such as the result cache treat malformed documents as
    // misses, so these are deliberately forgiving rather than throwing).
    [[nodiscard]] bool as_bool() const noexcept {
        return kind_ == Kind::Bool && bool_;
    }
    [[nodiscard]] std::int64_t as_int() const noexcept {
        if (kind_ == Kind::Int) return int_;
        if (kind_ == Kind::Uint) return static_cast<std::int64_t>(uint_);
        if (kind_ == Kind::Double) return static_cast<std::int64_t>(dbl_);
        return 0;
    }
    [[nodiscard]] std::uint64_t as_uint() const noexcept {
        if (kind_ == Kind::Uint) return uint_;
        if (kind_ == Kind::Int && int_ >= 0)
            return static_cast<std::uint64_t>(int_);
        if (kind_ == Kind::Double && dbl_ >= 0)
            return static_cast<std::uint64_t>(dbl_);
        return 0;
    }
    [[nodiscard]] double as_double() const noexcept {
        if (kind_ == Kind::Double) return dbl_;
        if (kind_ == Kind::Int) return static_cast<double>(int_);
        if (kind_ == Kind::Uint) return static_cast<double>(uint_);
        return 0.0;
    }
    [[nodiscard]] const std::string& as_string() const noexcept { return str_; }

    /// Array element access; requires kind() == Array and i < size().
    [[nodiscard]] const Json& at(std::size_t i) const { return items_[i]; }

    /// Object member access by insertion index (key, value).
    [[nodiscard]] const std::pair<std::string, Json>& member(std::size_t i) const {
        return members_[i];
    }

    /// Object insertion (keeps insertion order); returns *this for chaining.
    Json& set(std::string key, Json value) {
        members_.emplace_back(std::move(key), std::move(value));
        return *this;
    }

    /// Array append; returns *this for chaining.
    Json& push(Json value) {
        items_.push_back(std::move(value));
        return *this;
    }

    [[nodiscard]] std::size_t size() const noexcept {
        return kind_ == Kind::Object ? members_.size() : items_.size();
    }

    /// Object member lookup; nullptr when absent (or not an object).
    [[nodiscard]] const Json* find(const std::string& key) const {
        for (const auto& [k, v] : members_)
            if (k == key) return &v;
        return nullptr;
    }

    /// Serialise.  indent == 0 emits a single line; indent > 0 pretty-prints
    /// with that many spaces per nesting level.
    [[nodiscard]] std::string dump(int indent = 0) const;

    /// JSON string escaping ('"', '\\', control characters).
    [[nodiscard]] static std::string escape(const std::string& s);

    /// Parse a JSON document.  Returns nullopt on any syntax error (no
    /// exceptions: the result cache treats unreadable entries as misses).
    /// Accepts exactly what dump() produces plus arbitrary whitespace and
    /// the standard escape set; numbers without '.', 'e' or sign parse as
    /// Uint, with a leading '-' as Int, otherwise as Double.
    [[nodiscard]] static std::optional<Json> parse(const std::string& text);

private:
    void dump_to(std::string& out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    std::vector<Json> items_;                            // Array
    std::vector<std::pair<std::string, Json>> members_;  // Object
};

/// Write `j` to `path` (pretty-printed, trailing newline).  Returns false on
/// IO failure instead of throwing: observability must never kill a check.
bool save_json(const std::string& path, const Json& j, int indent = 2);

}  // namespace stgcc::obs
