#include "stg/qm.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace stgcc::stg {

namespace {

struct CubeKey {
    std::string s;
    friend bool operator==(const CubeKey&, const CubeKey&) = default;
};
struct CubeKeyHash {
    std::size_t operator()(const CubeKey& k) const noexcept {
        return std::hash<std::string>{}(k.s);
    }
};

CubeKey key_of(const Cube& c) { return CubeKey{c.care.to_string() + c.value.to_string()}; }

bool hits(const Cube& cube, const std::vector<Code>& off) {
    for (const Code& o : off)
        if (cube.covers(o)) return true;
    return false;
}

}  // namespace

std::vector<Cube> prime_implicants(const std::vector<Code>& on,
                                   const std::vector<Code>& off,
                                   std::size_t width, MinimizeOptions opts) {
    // BFS over cubes: start from the ON minterms, repeatedly drop one
    // literal while the cube still avoids the OFF-set.  A cube from which
    // no literal can be dropped is prime.
    std::unordered_set<CubeKey, CubeKeyHash> seen;
    std::vector<Cube> frontier;
    for (const Code& m : on) {
        Cube c;
        c.care = BitVec(width);
        c.care.set_all();
        c.value = m;
        if (seen.size() >= opts.max_primes)
            throw ModelError("prime implicant generation exceeded " +
                             std::to_string(opts.max_primes) + " cubes");
        if (seen.insert(key_of(c)).second) frontier.push_back(c);
    }
    std::vector<Cube> primes;
    while (!frontier.empty()) {
        std::vector<Cube> next;
        for (const Cube& cube : frontier) {
            bool expandable = false;
            for (SignalId v = 0; v < width; ++v) {
                if (!cube.care.test(v)) continue;
                Cube wider = cube;
                wider.care.reset(v);
                wider.value.reset(v);
                if (hits(wider, off)) continue;
                expandable = true;
                if (seen.size() >= opts.max_primes)
                    throw ModelError("prime implicant generation exceeded " +
                                     std::to_string(opts.max_primes) + " cubes");
                if (seen.insert(key_of(wider)).second) next.push_back(wider);
            }
            if (!expandable) primes.push_back(cube);
        }
        frontier = std::move(next);
    }
    return primes;
}

Cover minimize_exact(const std::vector<Code>& on, const std::vector<Code>& off,
                     std::size_t width, MinimizeOptions opts) {
    if (on.empty()) return Cover{};
    std::vector<Cube> primes = prime_implicants(on, off, width, opts);

    // Coverage table: per ON minterm the set of primes covering it.
    const std::size_t n = on.size();
    std::vector<std::vector<std::uint32_t>> covering(n);
    for (std::uint32_t pi = 0; pi < primes.size(); ++pi)
        for (std::size_t mi = 0; mi < n; ++mi)
            if (primes[pi].covers(on[mi])) covering[mi].push_back(pi);

    // Branch and bound: repeatedly pick the uncovered minterm with fewest
    // candidate primes and branch over them.
    std::vector<std::uint32_t> best, current;
    std::size_t best_size = primes.size() + 1;
    std::vector<int> covered(n, 0);
    std::size_t nodes = 0;

    std::function<void()> go = [&]() {
        if (++nodes > opts.max_nodes)
            throw ModelError("exact cover search exceeded node limit");
        if (current.size() + 1 > best_size) return;  // cannot improve
        std::size_t pick = n;
        for (std::size_t mi = 0; mi < n; ++mi) {
            if (covered[mi]) continue;
            if (pick == n || covering[mi].size() < covering[pick].size()) pick = mi;
        }
        if (pick == n) {  // everything covered
            if (current.size() < best_size) {
                best_size = current.size();
                best = current;
            }
            return;
        }
        if (current.size() + 1 >= best_size) return;
        for (std::uint32_t pi : covering[pick]) {
            std::vector<std::size_t> newly;
            for (std::size_t mi = 0; mi < n; ++mi)
                if (!covered[mi] && primes[pi].covers(on[mi])) {
                    covered[mi] = 1;
                    newly.push_back(mi);
                }
            current.push_back(pi);
            go();
            current.pop_back();
            for (std::size_t mi : newly) covered[mi] = 0;
        }
    };
    go();
    STGCC_ENSURE(best_size <= primes.size());

    Cover cover;
    for (std::uint32_t pi : best) cover.cubes.push_back(primes[pi]);
    return cover;
}

NextStateFunction synthesize_exact(const StateGraph& sg, SignalId z,
                                   MinimizeOptions opts) {
    // Reuse the greedy synthesiser's ON/OFF extraction (and its CSC check)
    // by running it first; then minimise exactly.
    LogicSynthesizer synth(sg);
    NextStateFunction fn = synth.synthesize(z);
    std::vector<Code> on, off;
    std::unordered_map<BitVec, bool, BitVecHash> nxt_of_code;
    for (petri::StateId s = 0; s < sg.num_states(); ++s)
        nxt_of_code.emplace(sg.code(s), sg.nxt(s, z));
    for (const auto& [code, nxt] : nxt_of_code) (nxt ? on : off).push_back(code);
    Cover exact = minimize_exact(on, off, sg.stg().num_signals(), opts);
    if (exact.cubes.size() < fn.cover.cubes.size()) fn.cover = std::move(exact);
    return fn;
}

}  // namespace stgcc::stg
