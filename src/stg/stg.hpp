// stgcc -- Signal Transition Graphs.
//
// An Stg is a net system whose transitions carry signal-edge labels
// (z+ / z-), or a dummy label tau.  The verification algorithms in this
// library assume dummy-free STGs (as does the paper; the dummy case is
// delegated to the full technical report) -- checkers reject STGs with
// dummies up front via require_dummy_free().
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "petri/net_system.hpp"
#include "stg/signal.hpp"
#include "util/bitvec.hpp"

namespace stgcc::stg {

/// A binary signal code vector; bit i is the value of signal i.
using Code = BitVec;

class Stg {
public:
    Stg() = default;

    // --- construction -----------------------------------------------------

    SignalId add_signal(std::string name, SignalKind kind);

    /// Add a transition labelled with a signal edge.  `name` is the net-level
    /// transition name (e.g. "dsr+" or "dsr+/1") and must be unique.
    petri::TransitionId add_transition(std::string name, Label label);

    /// Add a dummy (tau-labelled) transition.
    petri::TransitionId add_dummy_transition(std::string name);

    petri::PlaceId add_place(std::string name) { return sys_.net().add_place(std::move(name)); }
    void add_arc_pt(petri::PlaceId p, petri::TransitionId t) { sys_.net().add_arc_pt(p, t); }
    void add_arc_tp(petri::TransitionId t, petri::PlaceId p) { sys_.net().add_arc_tp(t, p); }
    void set_initial_marking(petri::Marking m) { sys_.set_initial_marking(std::move(m)); }

    void set_name(std::string name) { name_ = std::move(name); }

    // --- access -----------------------------------------------------------

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const petri::NetSystem& system() const noexcept { return sys_; }
    [[nodiscard]] const petri::Net& net() const noexcept { return sys_.net(); }

    [[nodiscard]] std::size_t num_signals() const noexcept { return signal_names_.size(); }
    [[nodiscard]] const std::string& signal_name(SignalId z) const {
        STGCC_REQUIRE(z < num_signals());
        return signal_names_[z];
    }
    [[nodiscard]] SignalKind signal_kind(SignalId z) const {
        STGCC_REQUIRE(z < num_signals());
        return signal_kinds_[z];
    }
    [[nodiscard]] SignalId find_signal(std::string_view name) const;

    /// Signals driven by the circuit (outputs + internals), ascending.
    [[nodiscard]] std::vector<SignalId> circuit_driven_signals() const;

    [[nodiscard]] bool is_dummy(petri::TransitionId t) const {
        STGCC_REQUIRE(t < labels_.size());
        return !labels_[t].has_value();
    }
    [[nodiscard]] Label label(petri::TransitionId t) const {
        STGCC_REQUIRE(t < labels_.size());
        STGCC_REQUIRE(labels_[t].has_value());
        return *labels_[t];
    }
    [[nodiscard]] bool has_dummies() const;

    /// Throw ModelError when the STG contains dummy transitions.
    void require_dummy_free() const;

    /// Human-readable label text, e.g. "dsr+" or "tau".
    [[nodiscard]] std::string label_text(petri::TransitionId t) const;

    // --- semantics helpers --------------------------------------------------

    /// Signal change vector of a firing sequence: per-signal difference
    /// between the number of rising and falling edges.
    [[nodiscard]] std::vector<int> change_vector(
        const std::vector<petri::TransitionId>& sequence) const;

    /// Apply one labelled transition to a code; throws ModelError when the
    /// edge is inconsistent with the current value (z+ while z=1 etc.).
    [[nodiscard]] Code code_after(const Code& code, petri::TransitionId t) const;

    /// The set of enabled circuit-driven signals Out(M), as a bit vector over
    /// signal ids.
    [[nodiscard]] BitVec out_signals(const petri::Marking& m) const;

    /// True when some transition of signal z is enabled at m.
    [[nodiscard]] bool signal_enabled(const petri::Marking& m, SignalId z) const;

    /// Boolean next-state function Nxt_z(M) (paper, section 6).  `code` must
    /// be the code of marking m.
    [[nodiscard]] bool nxt(const petri::Marking& m, const Code& code, SignalId z) const;

    /// Render a firing sequence as labels, e.g. "dsr+ lds+ ldtack+".
    [[nodiscard]] std::string sequence_text(
        const std::vector<petri::TransitionId>& sequence) const;

private:
    petri::NetSystem sys_;
    std::string name_ = "stg";
    std::vector<std::string> signal_names_;
    std::vector<SignalKind> signal_kinds_;
    std::unordered_map<std::string, SignalId> signal_index_;
    std::vector<std::optional<Label>> labels_;  // per transition
};

}  // namespace stgcc::stg
