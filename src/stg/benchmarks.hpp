// stgcc -- STG benchmark models.
//
// Two exact models come straight from the paper's figures (the VME bus
// controller of Fig. 1 and its CSC-resolved variant of Fig. 3).  The rest
// re-model the circuit classes behind Table 1 -- token-ring adapters,
// duplex channel controllers, counterflow pipeline controllers -- as
// parametric generators (see DESIGN.md, substitution 2), plus the scalable
// families used to demonstrate prefix-vs-state-space growth.
#pragma once

#include <string>
#include <vector>

#include "stg/stg.hpp"

namespace stgcc::stg::bench {

// --- exact models from the paper ------------------------------------------

/// Fig. 1: VME bus controller (read cycle).  Signals dsr, ldtack are inputs;
/// lds, d, dtack are outputs.  Contains the USC/CSC conflict between the
/// markings coded 10110 discussed throughout the paper.
[[nodiscard]] Stg vme_bus();

/// Fig. 3: the VME bus controller after CSC resolution with an internal
/// signal csc.  Free from coding conflicts, but csc violates normalcy
/// (its next-state function dsr (csc + !ldtack) is non-monotonic).
[[nodiscard]] Stg vme_bus_csc_resolved();

// --- scalable families -----------------------------------------------------

/// PAR(n): n independent four-phase handshakes (r_i+ a_i+ r_i- a_i-)
/// running in parallel.  The state graph has 4^n states; the prefix has
/// 4n+? events.  Conflict-free (USC and CSC hold).
[[nodiscard]] Stg parallel_handshakes(int n);

/// PIPE(n): a linear pipeline of n four-phase handshakes where stage i+1's
/// request is triggered by stage i's acknowledgement.  Marked graph.
[[nodiscard]] Stg handshake_pipeline(int n);

/// SEQ(n): n four-phase handshakes executed strictly in sequence in a
/// single loop.  Linear state graph, linear prefix.  Has USC conflicts for
/// n >= 2 (the all-zero code repeats between rounds).
[[nodiscard]] Stg sequential_handshakes(int n);

/// Johnson counter over k signals: the cycle z1+ ... zk+ z1- ... zk-.
/// All 2k reachable codes are distinct, so USC holds.
[[nodiscard]] Stg johnson_counter(int k);

/// A slow "envelope" signal wrapping `rounds` repetitions of a two-signal
/// handshake: the inner phase repeats under the same envelope value, giving
/// guaranteed USC *and* CSC conflicts for rounds >= 2.
[[nodiscard]] Stg phase_envelope(int rounds);

// --- circuit-class re-modelings behind Table 1 -----------------------------

/// Token-ring adapter with `stations` stations.  A token circulates; at each
/// station the environment chooses to request service (req_i / gnt_i
/// handshake) or to let the token pass; the pass is signalled on the ring
/// output rr_i.  The token position is not observable in the code, giving
/// the classic coding conflicts of ring adapters ([1,12]).
[[nodiscard]] Stg token_ring(int stations);

/// Four-phase duplex channel controller ([7]): two directions (A->B data on
/// ad/bk, B->A data on bd/ak) multiplexed over one channel with turnaround.
/// With `coded_direction == false` the channel direction is not coded -- the
/// controller has USC/CSC conflicts.  With `coded_direction == true` an
/// internal signal dir tracks the turnaround and resolves them.
/// `data_bits` scales the model (each bit adds a data handshake pair);
/// `power_control` wraps each burst in an extra output handshake (the
/// modified-protocol variants).
[[nodiscard]] Stg duplex_channel(int data_bits, bool coded_direction,
                                 bool power_control = false);

/// Classic Muller C-element pipeline: stages c1..cn with c_i = C(c_{i-1},
/// !c_{i+1}), producer input c0 and consumer input c_{n+1}.  Marked graph;
/// conflict-free (USC and CSC hold); exponentially many states, linear
/// prefix.
[[nodiscard]] Stg muller_pipeline(int n);

/// Counterflow pipeline controller ([18]): two Muller C-element flows leave
/// a common source in opposite roles (instructions forward, results
/// counter-directed).  `symmetric` selects equal (true) or halved (false)
/// flow lengths.  Built conflict-free ("-CSC" rows of Table 1:
/// specifications whose conflicts have been resolved), which makes them the
/// hard, exhaustive-search instances.
[[nodiscard]] Stg counterflow(int stages, bool symmetric);

/// Mutual-exclusion arbiter: `clients` request lines r_i (inputs) compete
/// for grants g_i (outputs) protected by one mutex token; arbitration is
/// modelled by the shared place (a non-free choice, unlike the rings).
/// Every reachable marking is determined by the (r_i, g_i) codes, so the
/// specification is conflict-free -- a useful contrast: a conflict-free
/// instance where the section 7 optimisation does NOT apply.
[[nodiscard]] Stg mutex_arbiter(int clients);

// --- suites -----------------------------------------------------------------

struct NamedBenchmark {
    std::string name;
    Stg stg;
    /// True for the "-CSC" rows: the specification is expected to be free
    /// from coding conflicts (the hard case for the search).
    bool expect_conflict_free;
};

/// The Table 1 suite: one entry per row of the paper's table, re-modeled.
[[nodiscard]] std::vector<NamedBenchmark> table1_suite();

}  // namespace stgcc::stg::bench
