// stgcc -- structural transformations for conflict resolution.
//
// insert_signal_transition() performs the standard series insertion used to
// resolve coding conflicts: a new (typically internal) signal edge is
// spliced in directly after an existing transition t, i.e. every t -> p arc
// is re-routed t -> q -> new -> p through a fresh place q.  The visible
// behaviour is preserved up to the delay of the inserted internal event --
// equivalently, the inserted transition is type-1 securely contractable, so
// hiding the new signal and contracting recovers the original STG (tested).
//
// hide_signal() relabels all edges of a signal as dummies (used together
// with contraction to validate insertions).
#pragma once

#include "stg/stg.hpp"

namespace stgcc::stg {

/// Insert a new transition labelled `label` (its signal must already be
/// declared) in series after transition `after`.  Returns the transformed
/// STG; the input is not modified.
[[nodiscard]] Stg insert_signal_transition(const Stg& input,
                                           petri::TransitionId after,
                                           Label label,
                                           const std::string& transition_name);

/// Insert a new transition in series after place `after`: the place's
/// consumers are re-routed through p -> new -> p'.  Unlike the transition
/// variant this covers *all* branches flowing through the place, which is
/// what resolving conflicts across alternative branches needs.
[[nodiscard]] Stg insert_signal_after_place(const Stg& input,
                                            petri::PlaceId after, Label label,
                                            const std::string& transition_name);

/// Insert a new signal edge in series *before* place `after`: one fresh
/// transition instance (`name/1`, `name/2`, ...) is spliced into every
/// producing arc u -> p, so the toggle fires on every branch that marks the
/// place.  This is the move that resolves conflicts between a marking and
/// its all-branches predecessor (e.g. token-ring skip loops).  The place
/// must have at least one producer.
[[nodiscard]] Stg insert_signal_before_place(const Stg& input,
                                             petri::PlaceId place, Label label,
                                             const std::string& base_name);

/// Insert one instance of the signal edge in series after *each* of the
/// given transitions (`name/1`, `name/2`, ...).  Used with the consumer set
/// of a choice place so the toggle fires on every alternative branch --
/// while that branch's own signals are still active, which keeps the
/// toggle's code window covered.
[[nodiscard]] Stg insert_signal_after_transitions(
    const Stg& input, const std::vector<petri::TransitionId>& after,
    Label label, const std::string& base_name);

/// Copy the STG with a fresh internal signal added; returns the new id.
[[nodiscard]] std::pair<Stg, SignalId> with_internal_signal(const Stg& input,
                                                            std::string name);

/// Relabel every transition of signal z as a dummy (tau).  The signal
/// itself remains declared but unused.
[[nodiscard]] Stg hide_signal(const Stg& input, SignalId z);

}  // namespace stgcc::stg
