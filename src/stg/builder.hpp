// stgcc -- convenient construction of STGs.
//
// StgBuilder offers the textual conventions of the ASTG interchange format:
// transitions are referred to by edge text ("dsr+", "lds-/1"), places are
// either declared explicitly or created implicitly between two transitions
// (the `<t1,t2>` places of .g files).  The builder is used by the .g parser,
// the benchmark generators, tests and examples.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "stg/stg.hpp"

namespace stgcc::stg {

class StgBuilder {
public:
    explicit StgBuilder(std::string model_name = "stg");

    // --- signal declarations ------------------------------------------------
    StgBuilder& input(const std::string& name) { return signal(name, SignalKind::Input); }
    StgBuilder& output(const std::string& name) { return signal(name, SignalKind::Output); }
    StgBuilder& internal(const std::string& name) { return signal(name, SignalKind::Internal); }
    StgBuilder& signal(const std::string& name, SignalKind kind);

    /// Declare a dummy "signal" name; bare occurrences of this name (with an
    /// optional /k instance suffix) denote tau-labelled transitions.
    StgBuilder& dummy(const std::string& name);

    // --- structure ------------------------------------------------------------

    /// Declare an explicit place with an initial token count.
    StgBuilder& place(const std::string& name, std::uint32_t tokens = 0);

    /// Add an arc between two nodes.  Each endpoint is either a declared
    /// place name or transition edge text ("a+", "a-/2", or a declared dummy
    /// name).  Transition->transition arcs create the implicit place
    /// "<from,to>" in between; transition endpoints are created on first use.
    StgBuilder& arc(const std::string& from, const std::string& to);

    /// Chain of arcs: arc(n0,n1), arc(n1,n2), ...
    StgBuilder& chain(const std::vector<std::string>& nodes);

    /// Put a token on the implicit place between two transitions (the
    /// `<t1,t2>` entries of a .g .marking line).  The place must exist.
    StgBuilder& token_between(const std::string& from, const std::string& to);

    /// Set the token count of a declared place.
    StgBuilder& tokens(const std::string& place_name, std::uint32_t count);

    /// Finish; validates that every referenced transition's signal exists and
    /// that every transition has at least one input and one output place.
    [[nodiscard]] Stg build();

private:
    enum class NodeKind { Place, Transition };
    struct Node {
        NodeKind kind;
        std::uint32_t id;  // PlaceId or TransitionId
    };

    Node resolve(const std::string& text);
    petri::TransitionId transition_for(const std::string& text);
    petri::PlaceId implicit_place(const std::string& from, const std::string& to,
                                  bool create);

    Stg stg_;
    std::unordered_map<std::string, petri::PlaceId> places_;
    std::unordered_map<std::string, petri::TransitionId> transitions_;
    std::unordered_map<std::string, bool> dummies_;
    std::vector<std::uint32_t> init_tokens_;  // per place
    bool built_ = false;
};

}  // namespace stgcc::stg
