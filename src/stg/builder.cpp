#include "stg/builder.hpp"

namespace stgcc::stg {

namespace {

/// Strip an optional "/k" instance suffix: "a+/2" -> ("a+", true).
std::string strip_instance(const std::string& text) {
    const auto slash = text.rfind('/');
    if (slash == std::string::npos) return text;
    // Require digits after the slash.
    if (slash + 1 >= text.size()) return text;
    for (std::size_t i = slash + 1; i < text.size(); ++i)
        if (!std::isdigit(static_cast<unsigned char>(text[i]))) return text;
    return text.substr(0, slash);
}

}  // namespace

StgBuilder::StgBuilder(std::string model_name) {
    stg_.set_name(std::move(model_name));
}

StgBuilder& StgBuilder::signal(const std::string& name, SignalKind kind) {
    STGCC_REQUIRE(!built_);
    if (stg_.find_signal(name) != kNoSignal)
        throw ModelError("duplicate signal declaration: " + name);
    if (dummies_.count(name))
        throw ModelError("name declared both as signal and dummy: " + name);
    stg_.add_signal(name, kind);
    return *this;
}

StgBuilder& StgBuilder::dummy(const std::string& name) {
    STGCC_REQUIRE(!built_);
    if (stg_.find_signal(name) != kNoSignal)
        throw ModelError("name declared both as signal and dummy: " + name);
    dummies_[name] = true;
    return *this;
}

StgBuilder& StgBuilder::place(const std::string& name, std::uint32_t tokens) {
    STGCC_REQUIRE(!built_);
    if (places_.count(name)) throw ModelError("duplicate place: " + name);
    const petri::PlaceId p = stg_.add_place(name);
    places_.emplace(name, p);
    init_tokens_.resize(p + 1, 0);
    init_tokens_[p] = tokens;
    return *this;
}

petri::TransitionId StgBuilder::transition_for(const std::string& text) {
    auto it = transitions_.find(text);
    if (it != transitions_.end()) return it->second;

    const std::string base = strip_instance(text);
    petri::TransitionId t;
    if (dummies_.count(base)) {
        t = stg_.add_dummy_transition(text);
    } else {
        const ParsedLabel parsed = parse_label_text(base);
        const SignalId z = stg_.find_signal(parsed.signal_name);
        if (z == kNoSignal)
            throw ModelError("transition '" + text + "' refers to undeclared signal '" +
                             parsed.signal_name + "'");
        t = stg_.add_transition(text, Label{z, parsed.polarity});
    }
    transitions_.emplace(text, t);
    return t;
}

StgBuilder::Node StgBuilder::resolve(const std::string& text) {
    STGCC_REQUIRE(!text.empty());
    if (auto it = places_.find(text); it != places_.end())
        return Node{NodeKind::Place, it->second};
    return Node{NodeKind::Transition, transition_for(text)};
}

petri::PlaceId StgBuilder::implicit_place(const std::string& from,
                                          const std::string& to, bool create) {
    const std::string name = "<" + from + "," + to + ">";
    if (auto it = places_.find(name); it != places_.end()) return it->second;
    if (!create)
        throw ModelError("no implicit place " + name);
    const petri::PlaceId p = stg_.add_place(name);
    places_.emplace(name, p);
    init_tokens_.resize(p + 1, 0);
    return p;
}

StgBuilder& StgBuilder::arc(const std::string& from, const std::string& to) {
    STGCC_REQUIRE(!built_);
    const Node a = resolve(from);
    const Node b = resolve(to);
    if (a.kind == NodeKind::Place && b.kind == NodeKind::Place)
        throw ModelError("arc between two places: " + from + " -> " + to);
    if (a.kind == NodeKind::Place) {
        if (stg_.net().has_arc_pt(a.id, b.id))
            throw ModelError("duplicate arc: " + from + " -> " + to);
        stg_.add_arc_pt(a.id, b.id);
    } else if (b.kind == NodeKind::Place) {
        if (stg_.net().has_arc_tp(a.id, b.id))
            throw ModelError("duplicate arc: " + from + " -> " + to);
        stg_.add_arc_tp(a.id, b.id);
    } else {
        // A repeated transition->transition arc re-creates the same implicit
        // place: reject it as a duplicate rather than tripping the net's
        // arc-uniqueness contract.
        const std::string name = "<" + from + "," + to + ">";
        if (places_.count(name))
            throw ModelError("duplicate arc: " + from + " -> " + to);
        const petri::PlaceId p = implicit_place(from, to, /*create=*/true);
        stg_.add_arc_tp(a.id, p);
        stg_.add_arc_pt(p, b.id);
    }
    return *this;
}

StgBuilder& StgBuilder::chain(const std::vector<std::string>& nodes) {
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) arc(nodes[i], nodes[i + 1]);
    return *this;
}

StgBuilder& StgBuilder::token_between(const std::string& from, const std::string& to) {
    STGCC_REQUIRE(!built_);
    const petri::PlaceId p = implicit_place(from, to, /*create=*/false);
    init_tokens_.resize(std::max<std::size_t>(init_tokens_.size(), p + 1), 0);
    ++init_tokens_[p];
    return *this;
}

StgBuilder& StgBuilder::tokens(const std::string& place_name, std::uint32_t count) {
    STGCC_REQUIRE(!built_);
    auto it = places_.find(place_name);
    if (it == places_.end()) throw ModelError("unknown place: " + place_name);
    init_tokens_.resize(std::max<std::size_t>(init_tokens_.size(), it->second + 1), 0);
    init_tokens_[it->second] = count;
    return *this;
}

Stg StgBuilder::build() {
    STGCC_REQUIRE(!built_);
    built_ = true;
    const petri::Net& net = stg_.net();
    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        if (net.pre(t).empty())
            throw ModelError("transition " + net.transition_name(t) +
                             " has an empty preset");
        if (net.post(t).empty())
            throw ModelError("transition " + net.transition_name(t) +
                             " has an empty postset");
    }
    petri::Marking m0(net.num_places());
    for (std::size_t p = 0; p < init_tokens_.size(); ++p) m0.set(p, init_tokens_[p]);
    stg_.set_initial_marking(std::move(m0));
    return std::move(stg_);
}

}  // namespace stgcc::stg
