// stgcc -- result types shared by the state-based baseline checkers and the
// unfolding + integer-programming checkers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "petri/marking.hpp"
#include "petri/net.hpp"
#include "stg/stg.hpp"

namespace stgcc::stg {

/// Counters describing the work a check performed; used by the benches to
/// report the machine-independent cost measures from the paper's argument.
struct CheckStats {
    /// States materialised (state-based) -- the memory the paper's method avoids.
    std::size_t states = 0;
    /// Branch-and-bound nodes visited (IP-based).
    std::size_t search_nodes = 0;
    /// Candidate solutions reaching a leaf predicate evaluation.
    std::size_t leaves = 0;
    /// Closure/interval propagations (variable assignments forced by MCC
    /// closure and per-signal interval reasoning, IP-based).
    std::size_t propagations = 0;
    /// Deepest DFS recursion reached.
    std::size_t max_depth = 0;
    /// Wall-clock seconds.
    double seconds = 0.0;
    /// Seconds inside propagation/bounding (assign + closure); only
    /// measured while observability is enabled, 0 otherwise.  The branch
    /// side of the split is seconds - bound_seconds.
    double bound_seconds = 0.0;
};

/// A pair of reachable states demonstrating a USC or CSC conflict, together
/// with execution paths leading to them -- the witnesses the paper highlights
/// as a benefit of the IP method.
struct ConflictWitness {
    Code code;                 ///< The shared binary code of the two states.
    petri::Marking m1, m2;     ///< The two conflicting markings.
    BitVec out1, out2;         ///< Enabled circuit-driven signal sets.
    std::vector<petri::TransitionId> trace1, trace2;  ///< Paths from M0.

    /// True when the witness is also a CSC conflict (Out sets differ).
    [[nodiscard]] bool is_csc() const { return !(out1 == out2); }
};

/// Outcome of a USC or CSC check.
struct CodingCheckResult {
    bool holds = true;  ///< Property satisfied (no conflict found).
    std::optional<ConflictWitness> witness;
    CheckStats stats;
};

/// A pair of states demonstrating a normalcy violation for one signal.
struct NormalcyWitness {
    SignalId signal = kNoSignal;
    petri::Marking m1, m2;
    Code code1, code2;  ///< code1 <= code2 componentwise.
    bool nxt1 = false, nxt2 = false;
    std::vector<petri::TransitionId> trace1, trace2;
};

/// Normalcy status of one circuit-driven signal.
struct SignalNormalcy {
    SignalId signal = kNoSignal;
    bool p_normal = true;
    bool n_normal = true;
    /// Witness against p-normalcy (Code(M1)<=Code(M2), Nxt(M1)>Nxt(M2)).
    std::optional<NormalcyWitness> p_violation;
    /// Witness against n-normalcy (Code(M1)<=Code(M2), Nxt(M1)<Nxt(M2)).
    std::optional<NormalcyWitness> n_violation;

    /// A signal is normal when it is p-normal or n-normal.
    [[nodiscard]] bool normal() const { return p_normal || n_normal; }
};

/// Outcome of the normalcy check over all circuit-driven signals.
struct NormalcyResult {
    bool normal = true;
    std::vector<SignalNormalcy> per_signal;
    CheckStats stats;

    [[nodiscard]] const SignalNormalcy* find(SignalId z) const {
        for (const auto& s : per_signal)
            if (s.signal == z) return &s;
        return nullptr;
    }
};

}  // namespace stgcc::stg
