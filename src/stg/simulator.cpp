#include "stg/simulator.hpp"

#include "unfolding/prefix_checks.hpp"
#include "unfolding/unfolder.hpp"

namespace stgcc::stg {

Simulator::Simulator(const Stg& stg, Code initial_code)
    : stg_(&stg),
      initial_marking_(stg.system().initial_marking()),
      initial_code_(std::move(initial_code)),
      marking_(initial_marking_),
      code_(initial_code_) {
    STGCC_REQUIRE(initial_code_.size() == stg.num_signals());
}

bool Simulator::fire(petri::TransitionId t) {
    if (!can_fire(t)) return false;
    code_ = stg_->code_after(code_, t);  // throws on inconsistent edges
    marking_ = stg_->system().fire(marking_, t);
    trace_.push_back(t);
    return true;
}

bool Simulator::fire_named(std::string_view name) {
    const petri::TransitionId t = stg_->net().find_transition(name);
    if (t == petri::kNoTransition) return false;
    return fire(t);
}

std::size_t Simulator::replay(const std::vector<petri::TransitionId>& sequence) {
    std::size_t fired = 0;
    for (petri::TransitionId t : sequence) {
        if (!fire(t)) break;
        ++fired;
    }
    return fired;
}

bool Simulator::undo() {
    if (trace_.empty()) return false;
    std::vector<petri::TransitionId> shorter(trace_.begin(), trace_.end() - 1);
    reset();
    for (petri::TransitionId t : shorter) {
        const bool ok = fire(t);
        STGCC_ENSURE(ok);
    }
    return true;
}

void Simulator::reset() {
    marking_ = initial_marking_;
    code_ = initial_code_;
    trace_.clear();
}

std::size_t Simulator::random_walk(std::size_t steps, std::mt19937& rng) {
    std::size_t fired = 0;
    for (std::size_t i = 0; i < steps; ++i) {
        auto options = enabled();
        if (options.empty()) break;
        const std::size_t pick =
            std::uniform_int_distribution<std::size_t>(0, options.size() - 1)(rng);
        const bool ok = fire(options[pick]);
        STGCC_ENSURE(ok);
        ++fired;
    }
    return fired;
}

Simulator make_simulator(const Stg& stg) {
    auto prefix = unf::unfold(stg.system());
    auto consistency = unf::analyze_consistency(stg, prefix);
    if (!consistency.consistent)
        throw ModelError("cannot simulate inconsistent STG '" + stg.name() +
                         "': " + consistency.reason);
    return Simulator(stg, consistency.initial_code);
}

}  // namespace stgcc::stg
