// stgcc -- state-based (Petrify-style) baseline checkers.
//
// These operate on the fully constructed state graph and therefore pay the
// state-space-explosion cost the paper's unfolding+IP method avoids; they
// serve as the "Pfy" column of Table 1 and as ground truth in tests.
#pragma once

#include "stg/results.hpp"
#include "stg/state_graph.hpp"

namespace stgcc::stg {

/// Check the Unique State Coding property on the state graph.
[[nodiscard]] CodingCheckResult check_usc_sg(const StateGraph& sg);

/// Check the Complete State Coding property on the state graph.
[[nodiscard]] CodingCheckResult check_csc_sg(const StateGraph& sg);

/// Check normalcy of every circuit-driven signal on the state graph.
[[nodiscard]] NormalcyResult check_normalcy_sg(const StateGraph& sg);

}  // namespace stgcc::stg
