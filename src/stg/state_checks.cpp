#include "stg/state_checks.hpp"

#include <unordered_map>

#include "obs/trace.hpp"

namespace stgcc::stg {

namespace {

ConflictWitness make_witness(const StateGraph& sg, petri::StateId s1,
                             petri::StateId s2) {
    ConflictWitness w;
    w.code = sg.code(s1);
    w.m1 = sg.graph().marking(s1);
    w.m2 = sg.graph().marking(s2);
    w.out1 = sg.out_set(s1);
    w.out2 = sg.out_set(s2);
    w.trace1 = sg.graph().path_to(s1);
    w.trace2 = sg.graph().path_to(s2);
    return w;
}

void require_consistent(const StateGraph& sg) {
    if (!sg.consistent())
        throw ModelError("STG '" + sg.stg().name() +
                         "' is inconsistent: " + sg.inconsistency_reason());
}

}  // namespace

CodingCheckResult check_usc_sg(const StateGraph& sg) {
    require_consistent(sg);
    obs::Span span("sg.check_usc");
    CodingCheckResult result;
    result.stats.states = sg.num_states();

    std::unordered_map<BitVec, petri::StateId, BitVecHash> by_code;
    by_code.reserve(sg.num_states());
    for (petri::StateId s = 0; s < sg.num_states(); ++s) {
        auto [it, inserted] = by_code.emplace(sg.code(s), s);
        if (!inserted) {
            // Two distinct interned states with the same code: USC conflict.
            result.holds = false;
            result.witness = make_witness(sg, it->second, s);
            break;
        }
    }
    result.stats.seconds = span.seconds();
    span.attr("states", result.stats.states);
    span.attr("holds", result.holds);
    return result;
}

CodingCheckResult check_csc_sg(const StateGraph& sg) {
    require_consistent(sg);
    obs::Span span("sg.check_csc");
    CodingCheckResult result;
    result.stats.states = sg.num_states();

    // Per code, remember one representative per distinct Out set (two
    // suffice: any third state matches one of them or conflicts with both).
    struct Group {
        petri::StateId rep;
        BitVec out;
    };
    std::unordered_map<BitVec, Group, BitVecHash> by_code;
    by_code.reserve(sg.num_states());
    for (petri::StateId s = 0; s < sg.num_states(); ++s) {
        BitVec out = sg.out_set(s);
        auto [it, inserted] = by_code.emplace(sg.code(s), Group{s, out});
        if (!inserted && !(it->second.out == out)) {
            result.holds = false;
            result.witness = make_witness(sg, it->second.rep, s);
            break;
        }
    }
    result.stats.seconds = span.seconds();
    span.attr("states", result.stats.states);
    span.attr("holds", result.holds);
    return result;
}

NormalcyResult check_normalcy_sg(const StateGraph& sg) {
    require_consistent(sg);
    obs::Span span("sg.check_normalcy");
    const Stg& stg = sg.stg();
    NormalcyResult result;

    // Group states by code; per code and output signal remember a state
    // with Nxt=0 and one with Nxt=1 (both can exist only when CSC is
    // violated for that signal, but the definition quantifies over states,
    // so we keep both).
    struct CodeInfo {
        BitVec code;
        std::vector<petri::StateId> nxt0, nxt1;  // indexed by output position
    };
    const std::vector<SignalId> outputs = stg.circuit_driven_signals();
    std::unordered_map<BitVec, std::size_t, BitVecHash> index;
    std::vector<CodeInfo> groups;
    for (petri::StateId s = 0; s < sg.num_states(); ++s) {
        BitVec code = sg.code(s);
        auto [it, inserted] = index.emplace(code, groups.size());
        if (inserted) {
            groups.push_back(CodeInfo{code,
                                      std::vector<petri::StateId>(outputs.size(),
                                                                  petri::kNoState),
                                      std::vector<petri::StateId>(outputs.size(),
                                                                  petri::kNoState)});
        }
        CodeInfo& g = groups[it->second];
        for (std::size_t oi = 0; oi < outputs.size(); ++oi) {
            const bool v = sg.nxt(s, outputs[oi]);
            auto& slot = v ? g.nxt1[oi] : g.nxt0[oi];
            if (slot == petri::kNoState) slot = s;
        }
    }
    result.stats.states = sg.num_states();

    auto make_nw = [&](SignalId z, petri::StateId lo, petri::StateId hi) {
        NormalcyWitness w;
        w.signal = z;
        w.m1 = sg.graph().marking(lo);
        w.m2 = sg.graph().marking(hi);
        w.code1 = sg.code(lo);
        w.code2 = sg.code(hi);
        w.nxt1 = sg.nxt(lo, z);
        w.nxt2 = sg.nxt(hi, z);
        w.trace1 = sg.graph().path_to(lo);
        w.trace2 = sg.graph().path_to(hi);
        return w;
    };

    result.per_signal.resize(outputs.size());
    for (std::size_t oi = 0; oi < outputs.size(); ++oi)
        result.per_signal[oi].signal = outputs[oi];

    // All ordered pairs of comparable codes (including equal codes, where a
    // 0/1 Nxt mix already violates both normalcy directions).
    for (std::size_t i = 0; i < groups.size(); ++i) {
        for (std::size_t j = 0; j < groups.size(); ++j) {
            if (!groups[i].code.subset_of(groups[j].code)) continue;
            // code_i <= code_j componentwise.
            for (std::size_t oi = 0; oi < outputs.size(); ++oi) {
                SignalNormalcy& sn = result.per_signal[oi];
                // p-violation: Nxt(lo)=1, Nxt(hi)=0.
                if (sn.p_normal && groups[i].nxt1[oi] != petri::kNoState &&
                    groups[j].nxt0[oi] != petri::kNoState) {
                    sn.p_normal = false;
                    sn.p_violation =
                        make_nw(outputs[oi], groups[i].nxt1[oi], groups[j].nxt0[oi]);
                }
                // n-violation: Nxt(lo)=0, Nxt(hi)=1.
                if (sn.n_normal && groups[i].nxt0[oi] != petri::kNoState &&
                    groups[j].nxt1[oi] != petri::kNoState) {
                    sn.n_normal = false;
                    sn.n_violation =
                        make_nw(outputs[oi], groups[i].nxt0[oi], groups[j].nxt1[oi]);
                }
            }
        }
    }
    for (const auto& sn : result.per_signal)
        if (!sn.normal()) result.normal = false;
    result.stats.seconds = span.seconds();
    span.attr("states", result.stats.states);
    span.attr("normal", result.normal);
    return result;
}

}  // namespace stgcc::stg
