// stgcc -- derivation of next-state functions (step (c) of STG synthesis).
//
// Once an STG satisfies CSC, the next-state function Nxt_z of every
// circuit-driven signal is a well-defined boolean function of the state
// code, with unreachable codes as don't-cares.  This module derives
// sum-of-products covers for these functions:
//
//   * synthesize():       a compact cover via greedy cube expansion against
//                         the OFF-set (an "espresso-lite" single pass);
//   * monotone_cover():   the upward/downward-closure cover, which exists
//                         exactly when the signal is p-/n-normal -- giving an
//                         independent, exact characterisation of the paper's
//                         section 6 normalcy property (used in tests to
//                         cross-validate the normalcy checkers);
//   * unateness analysis of covers (monotonic-gate implementability).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stg/state_graph.hpp"

namespace stgcc::stg {

/// A product term (cube) over the signal variables: `care` marks the
/// variables that appear in the term, `value` their required polarity
/// (value bits outside care must be 0).
struct Cube {
    BitVec care;
    BitVec value;

    [[nodiscard]] bool covers(const Code& code) const {
        STGCC_ASSERT(code.size() == care.size());
        // code agrees with value on all care positions.
        BitVec diff = code;
        diff ^= value;
        return !diff.intersects(care);
    }

    /// Literal rendering, e.g. "dsr ldtack' csc".
    [[nodiscard]] std::string to_string(const Stg& stg) const;
};

/// Sum-of-products cover.
struct Cover {
    std::vector<Cube> cubes;

    [[nodiscard]] bool covers(const Code& code) const {
        for (const Cube& c : cubes)
            if (c.covers(code)) return true;
        return false;
    }

    /// Rendering, e.g. "d + csc".
    [[nodiscard]] std::string to_string(const Stg& stg) const;
};

/// Polarity behaviour of a cover in one variable.
enum class Unateness {
    Independent,    ///< the variable does not appear
    PositiveUnate,  ///< appears only uncomplemented
    NegativeUnate,  ///< appears only complemented
    Binate,         ///< appears in both polarities
};

[[nodiscard]] Unateness cover_unateness(const Cover& cover, SignalId var);

/// True when the cover is monotonic in the paper's section 6 sense:
/// non-decreasing in every variable (all positive-unate) or non-increasing
/// in every variable (all negative-unate) -- i.e. implementable by a gate
/// whose characteristic function is monotonic, with no input inverters.
[[nodiscard]] bool is_monotonic(const Cover& cover);

/// The synthesised next-state function of one signal.
struct NextStateFunction {
    SignalId signal = kNoSignal;
    Cover cover;
    std::size_t on_codes = 0;   ///< reachable codes with Nxt = 1
    std::size_t off_codes = 0;  ///< reachable codes with Nxt = 0
};

class LogicSynthesizer {
public:
    /// Requires a consistent STG; CSC is checked per synthesised signal
    /// (a code with both Nxt values trips ModelError, naming the signal).
    explicit LogicSynthesizer(const StateGraph& sg);

    /// Derive a cover for Nxt_z by greedy cube expansion.  The result
    /// covers every reachable ON code and no reachable OFF code
    /// (unreachable codes are don't-cares).
    [[nodiscard]] NextStateFunction synthesize(SignalId z) const;

    /// All circuit-driven signals.
    [[nodiscard]] std::vector<NextStateFunction> synthesize_all() const;

    /// The monotone-closure cover: for `positive`, one cube per ON code
    /// requiring exactly its 1-bits (covers everything above it); dually
    /// for negative.  Returns nullopt when the closure hits the OFF-set --
    /// which happens exactly when the signal is not p-normal (resp. not
    /// n-normal).
    [[nodiscard]] std::optional<Cover> monotone_cover(SignalId z,
                                                      bool positive) const;

private:
    struct OnOff {
        std::vector<Code> on, off;
    };
    [[nodiscard]] OnOff on_off_sets(SignalId z) const;

    const StateGraph* sg_;
};

}  // namespace stgcc::stg
