#include "stg/stg.hpp"

namespace stgcc::stg {

SignalId Stg::add_signal(std::string name, SignalKind kind) {
    STGCC_REQUIRE(!name.empty());
    STGCC_REQUIRE(signal_index_.find(name) == signal_index_.end());
    const SignalId id = static_cast<SignalId>(signal_names_.size());
    signal_index_.emplace(name, id);
    signal_names_.push_back(std::move(name));
    signal_kinds_.push_back(kind);
    return id;
}

petri::TransitionId Stg::add_transition(std::string name, Label label) {
    STGCC_REQUIRE(label.signal < num_signals());
    const petri::TransitionId t = sys_.net().add_transition(std::move(name));
    labels_.emplace_back(label);
    return t;
}

petri::TransitionId Stg::add_dummy_transition(std::string name) {
    const petri::TransitionId t = sys_.net().add_transition(std::move(name));
    labels_.emplace_back(std::nullopt);
    return t;
}

SignalId Stg::find_signal(std::string_view name) const {
    auto it = signal_index_.find(std::string(name));
    return it == signal_index_.end() ? kNoSignal : it->second;
}

std::vector<SignalId> Stg::circuit_driven_signals() const {
    std::vector<SignalId> out;
    for (SignalId z = 0; z < num_signals(); ++z)
        if (is_circuit_driven(signal_kinds_[z])) out.push_back(z);
    return out;
}

bool Stg::has_dummies() const {
    for (const auto& l : labels_)
        if (!l.has_value()) return true;
    return false;
}

void Stg::require_dummy_free() const {
    if (has_dummies())
        throw ModelError("STG '" + name_ +
                         "' contains dummy transitions; the coding-conflict "
                         "checkers require a dummy-free STG");
}

std::string Stg::label_text(petri::TransitionId t) const {
    if (is_dummy(t)) return "tau";
    const Label l = label(t);
    return signal_names_[l.signal] + polarity_char(l.polarity);
}

std::vector<int> Stg::change_vector(
    const std::vector<petri::TransitionId>& sequence) const {
    std::vector<int> v(num_signals(), 0);
    for (petri::TransitionId t : sequence) {
        if (is_dummy(t)) continue;
        const Label l = label(t);
        v[l.signal] += l.delta();
    }
    return v;
}

Code Stg::code_after(const Code& code, petri::TransitionId t) const {
    STGCC_REQUIRE(code.size() == num_signals());
    if (is_dummy(t)) return code;
    const Label l = label(t);
    const bool cur = code.test(l.signal);
    const bool rising = l.polarity == Polarity::Rising;
    if (cur == rising)
        throw ModelError("inconsistent edge " + label_text(t) + ": signal " +
                         signal_names_[l.signal] + " already has value " +
                         (cur ? "1" : "0"));
    Code next = code;
    next.assign_bit(l.signal, rising);
    return next;
}

BitVec Stg::out_signals(const petri::Marking& m) const {
    BitVec out(num_signals());
    for (petri::TransitionId t = 0; t < net().num_transitions(); ++t) {
        if (is_dummy(t)) continue;
        const Label l = label(t);
        if (!is_circuit_driven(signal_kinds_[l.signal])) continue;
        if (out.test(l.signal)) continue;
        if (sys_.enabled(m, t)) out.set(l.signal);
    }
    return out;
}

bool Stg::signal_enabled(const petri::Marking& m, SignalId z) const {
    for (petri::TransitionId t = 0; t < net().num_transitions(); ++t) {
        if (is_dummy(t) || label(t).signal != z) continue;
        if (sys_.enabled(m, t)) return true;
    }
    return false;
}

bool Stg::nxt(const petri::Marking& m, const Code& code, SignalId z) const {
    STGCC_REQUIRE(code.size() == num_signals());
    const bool value = code.test(z);
    // Nxt flips the current value exactly when an edge of z is enabled;
    // by consistency only the value-compatible edge can be enabled.
    return signal_enabled(m, z) ? !value : value;
}

std::string Stg::sequence_text(
    const std::vector<petri::TransitionId>& sequence) const {
    std::string out;
    for (std::size_t i = 0; i < sequence.size(); ++i) {
        if (i) out += ' ';
        out += label_text(sequence[i]);
    }
    return out;
}

}  // namespace stgcc::stg
