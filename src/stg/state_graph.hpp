// stgcc -- the state graph SG_Gamma of an STG.
//
// Wraps an explicit reachability graph with the state assignment function
// Code : S -> {0,1}^Z.  Construction simultaneously decides consistency: the
// code-change parity must be well defined per marking and all first
// occurrences of a signal must have the same sign (paper, section 2.1).
// The initial code v0 is derived from those first occurrences.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "petri/reachability.hpp"
#include "stg/stg.hpp"

namespace stgcc::stg {

class StateGraph {
public:
    /// Build the full state graph; throws ModelError on unbounded nets or
    /// when the state limit is exceeded.
    explicit StateGraph(const Stg& stg, petri::ReachOptions opts = {});

    [[nodiscard]] const Stg& stg() const noexcept { return *stg_; }
    [[nodiscard]] const petri::ReachabilityGraph& graph() const noexcept { return rg_; }
    [[nodiscard]] std::size_t num_states() const noexcept { return rg_.num_states(); }

    /// True when the STG is consistent (all codes well defined and binary).
    [[nodiscard]] bool consistent() const noexcept { return consistent_; }
    /// Human-readable reason when not consistent.
    [[nodiscard]] const std::string& inconsistency_reason() const noexcept {
        return inconsistency_reason_;
    }

    /// Initial code v0; only meaningful when consistent().  Signals that
    /// never fire default to 0.
    [[nodiscard]] const Code& initial_code() const {
        STGCC_REQUIRE(consistent_);
        return initial_code_;
    }

    /// Code(M) of a state; only meaningful when consistent().
    [[nodiscard]] Code code(petri::StateId s) const;

    /// Out(M): enabled circuit-driven signals of a state.
    [[nodiscard]] BitVec out_set(petri::StateId s) const {
        return stg_->out_signals(rg_.marking(s));
    }

    /// Nxt_z(M) for a state.
    [[nodiscard]] bool nxt(petri::StateId s, SignalId z) const {
        return stg_->nxt(rg_.marking(s), code(s), z);
    }

    /// Graphviz rendering: states labelled with their codes (USC/CSC
    /// conflict groups share a code label, making conflicts visible), edges
    /// with signal-edge labels.  Requires consistency.
    [[nodiscard]] std::string to_dot() const;

private:
    const Stg* stg_;
    petri::ReachabilityGraph rg_;
    std::vector<BitVec> delta_;  // per state: parity of signal changes
    Code initial_code_;
    bool consistent_ = true;
    std::string inconsistency_reason_;
};

}  // namespace stgcc::stg
