// stgcc -- signals and transition labels of Signal Transition Graphs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/assert.hpp"

namespace stgcc::stg {

using SignalId = std::uint32_t;
inline constexpr SignalId kNoSignal = static_cast<SignalId>(-1);

/// Signals are partitioned into inputs (driven by the environment) and
/// outputs/internals (driven by the circuit).  CSC and normalcy treat
/// internal signals exactly like outputs (the paper: "the latter may also
/// include internal signals").
enum class SignalKind : std::uint8_t { Input, Output, Internal };

[[nodiscard]] constexpr bool is_circuit_driven(SignalKind k) noexcept {
    return k == SignalKind::Output || k == SignalKind::Internal;
}

/// Edge direction of a signal transition: z+ (0 -> 1) or z- (1 -> 0).
enum class Polarity : std::uint8_t { Rising, Falling };

[[nodiscard]] constexpr char polarity_char(Polarity p) noexcept {
    return p == Polarity::Rising ? '+' : '-';
}

[[nodiscard]] constexpr Polarity opposite(Polarity p) noexcept {
    return p == Polarity::Rising ? Polarity::Falling : Polarity::Rising;
}

/// The label of a non-dummy STG transition: a signal edge z+ / z-.
struct Label {
    SignalId signal = kNoSignal;
    Polarity polarity = Polarity::Rising;

    /// Contribution of this edge to the signal change vector: +1 or -1.
    [[nodiscard]] int delta() const noexcept {
        return polarity == Polarity::Rising ? +1 : -1;
    }

    friend bool operator==(const Label&, const Label&) = default;
};

/// Parse a label written as `name+` / `name-`, e.g. "dsr+".  Returns the
/// signal name and polarity; throws ModelError on malformed input.
struct ParsedLabel {
    std::string signal_name;
    Polarity polarity;
};

[[nodiscard]] inline ParsedLabel parse_label_text(const std::string& text) {
    if (text.size() < 2)
        throw ModelError("malformed signal-edge label: '" + text + "'");
    const char last = text.back();
    if (last != '+' && last != '-')
        throw ModelError("signal-edge label must end in + or -: '" + text + "'");
    return ParsedLabel{text.substr(0, text.size() - 1),
                       last == '+' ? Polarity::Rising : Polarity::Falling};
}

}  // namespace stgcc::stg
