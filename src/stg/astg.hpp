// stgcc -- reader/writer for the ASTG `.g` interchange format used by
// petrify, punf, mpsat and the rest of the asynchronous-synthesis toolchain.
//
// Supported directives: .model .name .inputs .outputs .internal .dummy
// .graph .marking .capacity (parsed and validated) .end, `#` comments,
// implicit `<t1,t2>` places and `/k` transition instance suffixes.
#pragma once

#include <iosfwd>
#include <string>

#include "stg/stg.hpp"

namespace stgcc::stg {

/// Parse an STG from ASTG text.  Throws ModelError with a line number on
/// malformed input.
[[nodiscard]] Stg parse_astg(std::istream& in);
[[nodiscard]] Stg parse_astg_string(const std::string& text);

/// Load an STG from a .g file.
[[nodiscard]] Stg load_astg_file(const std::string& path);

/// Serialise an STG to ASTG text.  Implicit places (one producer, one
/// consumer) are collapsed to direct transition->transition arcs.
void write_astg(std::ostream& out, const Stg& stg);
[[nodiscard]] std::string write_astg_string(const Stg& stg);
void save_astg_file(const std::string& path, const Stg& stg);

}  // namespace stgcc::stg
