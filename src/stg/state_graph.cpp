#include "stg/state_graph.hpp"

#include <deque>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stgcc::stg {

StateGraph::StateGraph(const Stg& stg, petri::ReachOptions opts)
    : stg_(&stg), rg_(stg.system(), opts) {
    obs::Span span("sg.build");
    obs::counter("sg.builds").add();
    obs::counter("sg.states").add(rg_.num_states());
    obs::counter("sg.edges").add(rg_.num_edges());
    if (span.recording()) {
        obs::gauge("sg.hash_load_permille")
            .set(static_cast<std::int64_t>(rg_.hash_load_factor() * 1000.0f));
        span.attr("states", rg_.num_states());
        span.attr("edges", rg_.num_edges());
        span.attr("hash_load", rg_.hash_load_factor());
    }
    using petri::StateId;
    const std::size_t z_count = stg.num_signals();

    // Phase 1: propagate change-vector parities delta(s) over the graph.
    delta_.assign(rg_.num_states(), BitVec());
    std::vector<bool> have(rg_.num_states(), false);
    delta_[0] = BitVec(z_count);
    have[0] = true;
    std::deque<StateId> work{0};
    while (!work.empty() && consistent_) {
        const StateId s = work.front();
        work.pop_front();
        for (const auto& edge : rg_.successors(s)) {
            BitVec next = delta_[s];
            if (!stg.is_dummy(edge.transition))
                next.assign_bit(stg.label(edge.transition).signal,
                                !next.test(stg.label(edge.transition).signal));
            if (!have[edge.target]) {
                delta_[edge.target] = std::move(next);
                have[edge.target] = true;
                work.push_back(edge.target);
            } else if (!(delta_[edge.target] == next)) {
                consistent_ = false;
                inconsistency_reason_ =
                    "two firing sequences reach marking " +
                    rg_.marking(edge.target).to_string(stg.net()) +
                    " with different signal change vectors";
                break;
            }
        }
    }

    // Phase 2: derive v0 from edge signs; every edge of signal z determines
    // v0_z, and all determinations must agree (signal alternation).
    initial_code_ = BitVec(z_count);
    if (consistent_) {
        std::vector<int> v0(z_count, -1);  // -1 = undetermined
        for (StateId s = 0; s < rg_.num_states() && consistent_; ++s) {
            for (const auto& edge : rg_.successors(s)) {
                if (stg.is_dummy(edge.transition)) continue;
                const Label l = stg.label(edge.transition);
                // Value of z at s is v0_z XOR delta(s)_z and must be 0 before
                // a rising edge, 1 before a falling edge.
                const bool before = l.polarity == Polarity::Falling;
                const int implied =
                    static_cast<int>(before != delta_[s].test(l.signal));
                if (v0[l.signal] == -1) {
                    v0[l.signal] = implied;
                } else if (v0[l.signal] != implied) {
                    consistent_ = false;
                    inconsistency_reason_ =
                        "signal " + stg.signal_name(l.signal) +
                        " does not alternate: conflicting implied initial values";
                    break;
                }
            }
        }
        if (consistent_)
            for (SignalId z = 0; z < z_count; ++z)
                if (v0[z] == 1) initial_code_.set(z);
    }
}

std::string StateGraph::to_dot() const {
    STGCC_REQUIRE(consistent_);
    std::string out = "digraph sg {\n  rankdir=TB;\n";
    // Group states by code to make coding conflicts visible.
    std::unordered_map<BitVec, std::size_t, BitVecHash> group_size;
    for (petri::StateId s = 0; s < rg_.num_states(); ++s) ++group_size[code(s)];
    for (petri::StateId s = 0; s < rg_.num_states(); ++s) {
        const Code c = code(s);
        out += "  s" + std::to_string(s) + " [label=\"" + c.to_string() + "\"";
        if (group_size[c] > 1) out += ",style=filled,fillcolor=lightsalmon";
        if (s == 0) out += ",peripheries=2";
        out += "];\n";
    }
    for (petri::StateId s = 0; s < rg_.num_states(); ++s)
        for (const auto& edge : rg_.successors(s))
            out += "  s" + std::to_string(s) + " -> s" +
                   std::to_string(edge.target) + " [label=\"" +
                   stg_->label_text(edge.transition) + "\"];\n";
    out += "}\n";
    return out;
}

Code StateGraph::code(petri::StateId s) const {
    STGCC_REQUIRE(consistent_);
    STGCC_REQUIRE(s < delta_.size());
    Code c = initial_code_;
    c ^= delta_[s];
    return c;
}

}  // namespace stgcc::stg
