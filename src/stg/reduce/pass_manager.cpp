#include <algorithm>
#include <sstream>

#include "cache/result_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stg/reduce/reduce.hpp"

namespace stgcc::stg::reduce {

std::size_t Summary::places_removed() const {
    std::size_t n = 0;
    for (const PassStats& p : passes) n += p.places_removed;
    return n;
}

std::size_t Summary::transitions_removed() const {
    std::size_t n = 0;
    for (const PassStats& p : passes) n += p.transitions_removed;
    return n;
}

ReduceResult run_passes(std::shared_ptr<const Stg> input,
                        const Options& opts) {
    STGCC_REQUIRE(input != nullptr);
    ReduceResult result;
    result.stg = input;
    if (!opts.enabled) return result;

    obs::Span span("reduce");
    span.attr("stg", input->name());
    const std::vector<std::string>& names =
        opts.passes.empty() ? known_passes() : opts.passes;
    std::vector<const ReductionPass*> passes;
    for (const std::string& name : names) {
        const ReductionPass* pass = find_pass(name);
        if (pass == nullptr)
            throw ModelError("unknown reduction pass '" + name + "'");
        passes.push_back(pass);
        result.summary.passes.push_back(PassStats{name, 0, 0, 0});
    }

    // Fixed point over rounds: each round applies every pass once (each
    // pass runs its own rule to a local fixed point); stop when a full
    // round changes nothing.  Rounds matter because passes enable one
    // another -- removing a const self-loop place can make a dummy
    // contractable that was not before.
    std::shared_ptr<const Stg> current = std::move(input);
    bool changed = true;
    while (changed) {
        changed = false;
        ++result.summary.rounds;
        for (std::size_t i = 0; i < passes.size(); ++i) {
            obs::Span pass_span("reduce.pass");
            pass_span.attr("pass", passes[i]->name());
            PassResult r = passes[i]->apply(current);
            pass_span.attr("applications", r.applications);
            if (!r.changed) continue;
            changed = true;
            PassStats& stats = result.summary.passes[i];
            stats.applications += r.applications;
            stats.places_removed += r.places_removed;
            stats.transitions_removed += r.transitions_removed;
            current = std::make_shared<const Stg>(std::move(r.stg));
            result.chain.push(std::move(r.map));
        }
    }

    const petri::Net& net = current->net();
    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t)
        if (current->is_dummy(t))
            result.summary.remaining_dummies.push_back(net.transition_name(t));

    obs::counter("stg.reduce.runs").add(1);
    obs::counter("stg.reduce.places_removed")
        .add(result.summary.places_removed());
    obs::counter("stg.reduce.transitions_removed")
        .add(result.summary.transitions_removed());
    span.attr("rounds", result.summary.rounds);
    span.attr("places_removed", result.summary.places_removed());
    span.attr("transitions_removed", result.summary.transitions_removed());
    result.stg = std::move(current);
    return result;
}

std::string canonical_text(const Stg& stg) {
    // Deterministic, name-complete rendering: section per element kind,
    // arc lists sorted by endpoint name.  Element *order* in the file does
    // not matter to structural identity, so names are sorted too -- two
    // nets built in different insertion orders canonicalize identically.
    const petri::Net& net = stg.net();
    std::ostringstream out;
    out << "stgcanon/1\n";

    // Signal *order* is significant (codes and Out sets index by SignalId),
    // so signal lines are not sorted; place/transition order is not -- the
    // report codec addresses those by name.
    out << "signals " << stg.num_signals() << "\n";
    for (SignalId z = 0; z < stg.num_signals(); ++z)
        out << stg.signal_name(z) << " "
            << std::to_string(static_cast<int>(stg.signal_kind(z))) << "\n";

    std::vector<std::string> lines;
    for (petri::PlaceId p = 0; p < net.num_places(); ++p)
        lines.push_back(net.place_name(p) + " " +
                        std::to_string(stg.system().initial_marking()[p]));
    std::sort(lines.begin(), lines.end());
    out << "places " << lines.size() << "\n";
    for (const std::string& l : lines) out << l << "\n";

    lines.clear();
    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        std::string line = net.transition_name(t) + " " + stg.label_text(t);
        std::vector<std::string> pre, post;
        for (petri::PlaceId p : net.pre(t)) pre.push_back(net.place_name(p));
        for (petri::PlaceId p : net.post(t)) post.push_back(net.place_name(p));
        std::sort(pre.begin(), pre.end());
        std::sort(post.begin(), post.end());
        line += " <-";
        for (const std::string& p : pre) line += " " + p;
        line += " ->";
        for (const std::string& p : post) line += " " + p;
        lines.push_back(std::move(line));
    }
    std::sort(lines.begin(), lines.end());
    out << "transitions " << lines.size() << "\n";
    for (const std::string& l : lines) out << l << "\n";
    return out.str();
}

std::uint64_t semantic_hash(const Stg& stg) {
    return cache::fnv1a64(canonical_text(stg));
}

}  // namespace stgcc::stg::reduce
