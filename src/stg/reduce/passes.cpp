#include <algorithm>
#include <functional>
#include <span>

#include "stg/contraction.hpp"
#include "stg/reduce/reduce.hpp"

namespace stgcc::stg::reduce {

namespace {

/// Sorted copy of an arc span, for set comparisons.
template <typename Id>
std::vector<Id> sorted(std::span<const Id> s) {
    std::vector<Id> v(s.begin(), s.end());
    std::sort(v.begin(), v.end());
    return v;
}

/// Rebuild `in` without the places flagged in `kill`.  Transition order and
/// ids are preserved, so the witness map is the transition identity.
Stg remove_places(const Stg& in, const std::vector<bool>& kill) {
    Stg out;
    out.set_name(in.name());
    for (SignalId z = 0; z < in.num_signals(); ++z)
        out.add_signal(in.signal_name(z), in.signal_kind(z));
    const petri::Net& net = in.net();
    std::vector<petri::PlaceId> pmap(net.num_places(), petri::kNoPlace);
    for (petri::PlaceId p = 0; p < net.num_places(); ++p)
        if (!kill[p]) pmap[p] = out.add_place(net.place_name(p));
    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        const petri::TransitionId nt =
            in.is_dummy(t) ? out.add_dummy_transition(net.transition_name(t))
                           : out.add_transition(net.transition_name(t),
                                                in.label(t));
        STGCC_REQUIRE(nt == t);
        for (petri::PlaceId p : net.pre(t))
            if (!kill[p]) out.add_arc_pt(pmap[p], t);
        for (petri::PlaceId p : net.post(t))
            if (!kill[p]) out.add_arc_tp(t, pmap[p]);
    }
    petri::Marking m0(out.net().num_places());
    for (petri::PlaceId p = 0; p < net.num_places(); ++p)
        if (!kill[p]) m0.set(pmap[p], in.system().initial_marking()[p]);
    out.set_initial_marking(std::move(m0));
    return out;
}

/// Identity-transition witness map (place-only passes).
WitnessMap identity_map(std::shared_ptr<const Stg> input) {
    std::vector<petri::TransitionId> tmap(input->net().num_transitions());
    for (std::size_t t = 0; t < tmap.size(); ++t)
        tmap[t] = static_cast<petri::TransitionId>(t);
    return WitnessMap(std::move(input), std::move(tmap), {});
}

/// Shared shape of the place-removal passes: `flag` marks removable places
/// given the input; the pass removes them all in one rebuild.
PassResult place_removal_pass(
    std::shared_ptr<const Stg> input,
    const std::function<std::vector<bool>(const Stg&)>& flag) {
    PassResult r;
    const std::vector<bool> kill = flag(*input);
    const std::size_t n =
        static_cast<std::size_t>(std::count(kill.begin(), kill.end(), true));
    if (n == 0) return r;
    r.changed = true;
    r.applications = n;
    r.places_removed = n;
    r.stg = remove_places(*input, kill);
    r.map = identity_map(std::move(input));
    return r;
}

/// Witness map of a contraction: surviving transitions keep their names
/// (products only rename places), so the table is a name lookup and the
/// removed set is the input dummies absent from the output.
WitnessMap contraction_map(std::shared_ptr<const Stg> input,
                           const Stg& output) {
    const petri::Net& in_net = input->net();
    const petri::Net& out_net = output.net();
    std::vector<petri::TransitionId> tmap(out_net.num_transitions());
    for (petri::TransitionId t = 0; t < out_net.num_transitions(); ++t) {
        tmap[t] = in_net.find_transition(out_net.transition_name(t));
        STGCC_REQUIRE(tmap[t] != petri::kNoTransition);
    }
    std::vector<petri::TransitionId> removed;
    for (petri::TransitionId t = 0; t < in_net.num_transitions(); ++t)
        if (out_net.find_transition(in_net.transition_name(t)) ==
            petri::kNoTransition)
            removed.push_back(t);
    return WitnessMap(std::move(input), std::move(tmap), std::move(removed));
}

class ContractPass final : public ReductionPass {
public:
    explicit ContractPass(bool series_only)
        : series_only_(series_only),
          name_(series_only ? "series" : "contract") {}
    [[nodiscard]] std::string_view name() const override { return name_; }
    [[nodiscard]] PassResult apply(
        std::shared_ptr<const Stg> input) const override {
        PassResult r;
        if (!input->has_dummies()) return r;
        ContractionResult c = contract_dummies(*input, series_only_);
        if (c.contracted == 0) return r;
        r.changed = true;
        r.applications = c.contracted;
        r.transitions_removed = c.contracted;
        // Product places may outnumber the merged ones (|P|x|Q| products
        // replace |P|+|Q| places); report the signed net as a saturating
        // count so the summary never claims negative removal.
        const std::size_t before = input->net().num_places();
        const std::size_t after = c.stg.net().num_places();
        r.places_removed = before > after ? before - after : 0;
        r.map = contraction_map(std::move(input), c.stg);
        r.stg = std::move(c.stg);
        return r;
    }

private:
    bool series_only_;
    std::string name_;
};

class DupPlacePass final : public ReductionPass {
public:
    [[nodiscard]] std::string_view name() const override { return "dup-place"; }
    [[nodiscard]] PassResult apply(
        std::shared_ptr<const Stg> input) const override {
        return place_removal_pass(std::move(input), [](const Stg& s) {
            const petri::Net& net = s.net();
            const petri::Marking& m0 = s.system().initial_marking();
            std::vector<bool> kill(net.num_places(), false);
            // Keep the lowest-id member of each duplicate class.  A place
            // duplicates an earlier one when preset, postset and initial
            // marking all agree: its token count then tracks the keeper's
            // in every reachable marking, so removal neither merges
            // distinct markings (USC-safe) nor changes enabling.
            for (petri::PlaceId p = 1; p < net.num_places(); ++p) {
                const auto p_pre = sorted(net.pre_of_place(p));
                const auto p_post = sorted(net.post_of_place(p));
                for (petri::PlaceId q = 0; q < p; ++q) {
                    if (kill[q] || m0[p] != m0[q]) continue;
                    if (p_pre == sorted(net.pre_of_place(q)) &&
                        p_post == sorted(net.post_of_place(q))) {
                        kill[p] = true;
                        break;
                    }
                }
            }
            return kill;
        });
    }
};

class ConstPlacePass final : public ReductionPass {
public:
    [[nodiscard]] std::string_view name() const override {
        return "const-place";
    }
    [[nodiscard]] PassResult apply(
        std::shared_ptr<const Stg> input) const override {
        return place_removal_pass(std::move(input), [](const Stg& s) {
            const petri::Net& net = s.net();
            const petri::Marking& m0 = s.system().initial_marking();
            std::vector<bool> kill(net.num_places(), false);
            // A marked pure-self-loop place: every adjacent transition both
            // consumes and produces it, so M(p) == M0(p) >= 1 forever -- it
            // never disables a transition and never distinguishes two
            // reachable markings.  (A place with any pure producer or pure
            // consumer must stay: its varying count can encode state.)
            for (petri::PlaceId p = 0; p < net.num_places(); ++p) {
                if (m0[p] < 1) continue;
                const auto producers = sorted(net.pre_of_place(p));
                const auto consumers = sorted(net.post_of_place(p));
                if (producers.empty() && consumers.empty()) continue;
                if (producers == consumers) kill[p] = true;
            }
            return kill;
        });
    }
};

}  // namespace

const std::vector<std::string>& known_passes() {
    static const std::vector<std::string> names = {"contract", "series",
                                                   "dup-place", "const-place"};
    return names;
}

const ReductionPass* find_pass(std::string_view name) {
    static const ContractPass contract{false};
    static const ContractPass series{true};
    static const DupPlacePass dup;
    static const ConstPlacePass cst;
    if (name == "contract") return &contract;
    if (name == "series") return &series;
    if (name == "dup-place") return &dup;
    if (name == "const-place") return &cst;
    return nullptr;
}

Options Options::all() {
    Options o;
    o.enabled = true;
    o.passes = known_passes();
    return o;
}

Options Options::parse(std::string_view spec) {
    if (spec.empty() || spec == "all" || spec == "on") return all();
    if (spec == "none" || spec == "off") return none();
    Options o;
    o.enabled = true;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::string_view name =
            spec.substr(start, comma == std::string_view::npos ? spec.size() - start
                                                               : comma - start);
        if (!name.empty()) {
            if (find_pass(name) == nullptr)
                throw ModelError("unknown reduction pass '" +
                                 std::string(name) + "'");
            o.passes.emplace_back(name);
        }
        if (comma == std::string_view::npos) break;
        start = comma + 1;
    }
    if (o.passes.empty())
        throw ModelError("empty reduction pass list '" + std::string(spec) +
                         "'");
    return o;
}

std::string Options::spec() const {
    if (!enabled) return "none";
    const std::vector<std::string>& list =
        passes.empty() ? known_passes() : passes;
    std::string out;
    for (const std::string& p : list) {
        if (!out.empty()) out += ',';
        out += p;
    }
    return out;
}

}  // namespace stgcc::stg::reduce
