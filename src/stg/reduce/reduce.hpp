// stgcc -- verdict-preserving net reductions with witness back-translation.
//
// Shrinking the STG before unfolding multiplies every downstream win: the
// IP method pays for each condition/event the unfolder emits, so removing
// redundant places and agglomerating silent transitions cuts the prefix the
// solver searches (PAPERS.md, Amat/Dal Zilio/Le Botlan, "Leveraging
// polyhedral reductions").  Each `ReductionPass` maps an input STG to a
// smaller STG together with a `WitnessMap` recording how to translate
// traces and markings of the reduced net back to the input net; the
// `PassManager` iterates the enabled passes to a fixed point and composes
// the maps into a `WitnessChain`, so every witness the checkers produce on
// the reduced net is rendered on the **original** input.
//
// Pass catalogue (docs/REDUCTIONS.md has the soundness arguments):
//   contract     -- type-1-secure dummy contraction (src/stg/contraction.*)
//   series       -- series agglomeration: the |*t|=|t*|=1 special case of
//                   contraction (same security conditions, same "(p*q)"
//                   product naming, so pass compositions converge)
//   dup-place    -- remove a place whose preset, postset and initial
//                   marking all equal another place's (M(p) == M(q) in every
//                   reachable marking: removal can neither merge distinct
//                   markings nor change enabling)
//   const-place  -- remove a marked pure-self-loop place (every adjacent
//                   transition consumes and produces it, M0 >= 1: its
//                   marking is constant, it never disables and never
//                   distinguishes markings)
//
// The canonical text / semantic hash of the reduced net keys the shared
// result-cache tier ("stgcore", docs/CACHING.md): structurally equivalent
// inputs reduce to the same net and share warm verdict entries even when
// their source bytes hash differently.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "stg/stg.hpp"

namespace stgcc::stg::reduce {

// --- options ---------------------------------------------------------------

/// Which passes run, in which order.  Parsed from the `--reduce[=list]`
/// CLI spec / the protocol `reduce` field; `spec()` renders the canonical
/// spelling used in cache-key signatures.
struct Options {
    bool enabled = false;
    /// Pass names in run order; empty + enabled means the default list.
    std::vector<std::string> passes;

    /// Default pipeline: contract, series, dup-place, const-place.
    /// (contract runs first so the general rule fixes the product-place
    /// names; series is then a no-op on the same dummies, which keeps
    /// `all` and `contract` convergent on dummy-only models.)
    [[nodiscard]] static Options all();
    [[nodiscard]] static Options none() { return {}; }

    /// Parse a spec: "none"/"off" (disabled), "all"/"on"/"" (default list),
    /// or a comma-separated pass-name list.  Throws ModelError on an
    /// unknown pass name.
    [[nodiscard]] static Options parse(std::string_view spec);

    /// Canonical spec string ("none" or the comma-joined pass list) -- the
    /// spelling embedded in options signatures and cache keys.
    [[nodiscard]] std::string spec() const;

    [[nodiscard]] bool operator==(const Options& o) const {
        return enabled == o.enabled && passes == o.passes;
    }
};

/// All pass names `Options::parse` accepts, in default run order.
[[nodiscard]] const std::vector<std::string>& known_passes();

// --- witness back-translation ----------------------------------------------

/// A trace of the map's input net together with the (tau-closed) marking it
/// reaches -- the result of translating a reduced-net trace one level up.
struct TranslatedState {
    std::vector<petri::TransitionId> trace;
    petri::Marking marking;
};

/// Records how one pass's output net translates back to its input net.
///
/// Transitions surviving a pass keep their names, so the map stores the
/// output-id -> input-id table plus the set of *removed* input transitions
/// (always silent: only dummy transitions are ever removed).  Translation
/// is by guided replay on the input net: fire the mapped transition when it
/// is enabled, otherwise fire the lowest-id enabled removed dummy first --
/// type-1 security guarantees a removed dummy's preset tokens are wanted by
/// nobody else, so greedy firing can never steal an enablement.  The replay
/// reconstructs the input-net marking for free, and a final tau-closure
/// advances it past any still-enabled removed dummies so the rendered
/// marking is the canonical representative of the reduced marking's class.
class WitnessMap {
public:
    WitnessMap() = default;
    WitnessMap(std::shared_ptr<const Stg> input,
               std::vector<petri::TransitionId> to_input,
               std::vector<petri::TransitionId> removed_silent);

    /// Translate a reduced-net trace to an input-net trace + marking.
    /// nullopt only if replay fails (a soundness bug; callers treat it as
    /// fatal) or a pathological dummy cycle exceeds the iteration bound.
    [[nodiscard]] std::optional<TranslatedState> translate(
        const std::vector<petri::TransitionId>& trace) const;

    /// Input-net id of a surviving reduced-net transition.
    [[nodiscard]] petri::TransitionId translate_transition(
        petri::TransitionId reduced) const;

    [[nodiscard]] const Stg& input() const { return *input_; }
    [[nodiscard]] bool identity() const {
        return removed_.empty() && identity_transitions_;
    }

private:
    std::shared_ptr<const Stg> input_;
    std::vector<petri::TransitionId> to_input_;  // indexed by output tid
    std::vector<petri::TransitionId> removed_;   // input tids, all silent
    bool identity_transitions_ = true;
};

/// Composition of per-pass maps, applied in reverse pass order: a trace on
/// the final reduced net is lifted one pass at a time back to the original
/// input.  An empty chain is the identity.
class WitnessChain {
public:
    void push(WitnessMap map) { maps_.push_back(std::move(map)); }
    [[nodiscard]] bool empty() const { return maps_.empty(); }

    /// True when no map in the chain removed a transition or renumbered
    /// one -- traces need no rewriting (markings still do, via translate).
    [[nodiscard]] bool trace_identity() const;

    [[nodiscard]] std::optional<TranslatedState> translate(
        const std::vector<petri::TransitionId>& trace) const;

    [[nodiscard]] petri::TransitionId translate_transition(
        petri::TransitionId reduced) const;

private:
    std::vector<WitnessMap> maps_;  // maps_[0] translates into the original
};

// --- passes and the manager ------------------------------------------------

/// Work done by one pass across all manager rounds.
struct PassStats {
    std::string pass;
    std::size_t applications = 0;        ///< individual rule firings
    std::size_t places_removed = 0;      ///< net of products created
    std::size_t transitions_removed = 0;
};

/// Aggregate outcome of a PassManager run.
struct Summary {
    std::vector<PassStats> passes;  ///< one entry per enabled pass, run order
    std::size_t rounds = 0;         ///< fixed-point iterations (>= 1 when run)
    std::vector<std::string> remaining_dummies;  ///< dummies still present

    [[nodiscard]] std::size_t places_removed() const;
    [[nodiscard]] std::size_t transitions_removed() const;
    [[nodiscard]] bool any() const {
        return places_removed() + transitions_removed() > 0;
    }
};

/// One application of a reduction pass.
struct PassResult {
    bool changed = false;
    Stg stg;                 ///< valid only when changed
    WitnessMap map;          ///< valid only when changed
    std::size_t applications = 0;
    std::size_t places_removed = 0;
    std::size_t transitions_removed = 0;
};

/// A named verdict-preserving reduction rule.  `apply` runs the rule to its
/// own fixed point on `input` (shared-owned so the WitnessMap can keep it
/// alive for replay).
class ReductionPass {
public:
    virtual ~ReductionPass() = default;
    [[nodiscard]] virtual std::string_view name() const = 0;
    [[nodiscard]] virtual PassResult apply(
        std::shared_ptr<const Stg> input) const = 0;
};

/// Look up a pass by name (nullptr when unknown).  The returned object is a
/// process-lifetime singleton.
[[nodiscard]] const ReductionPass* find_pass(std::string_view name);

/// Everything the caller needs after reduction: the net the checks run on,
/// the composed back-translation, and the per-pass accounting.
struct ReduceResult {
    std::shared_ptr<const Stg> stg;  ///< reduced net (== input when no-op)
    WitnessChain chain;
    Summary summary;
};

/// Run the enabled passes to a fixed point (each round applies every pass
/// once, in order; stop when a full round changes nothing).  Disabled
/// options return the input unchanged with an empty chain.
[[nodiscard]] ReduceResult run_passes(std::shared_ptr<const Stg> input,
                                      const Options& opts);

// --- semantic identity -----------------------------------------------------

/// Deterministic canonical text of an STG (signals, places with markings,
/// transitions with labels, sorted arc lists) -- two STGs with equal
/// canonical text are structurally identical, names included.
[[nodiscard]] std::string canonical_text(const Stg& stg);

/// FNV-1a hash of canonical_text: the reduced-net key of the shared
/// "stgcore" result-cache tier (docs/CACHING.md).
[[nodiscard]] std::uint64_t semantic_hash(const Stg& stg);

}  // namespace stgcc::stg::reduce
