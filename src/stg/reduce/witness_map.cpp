#include "stg/reduce/reduce.hpp"

#include <algorithm>

namespace stgcc::stg::reduce {

WitnessMap::WitnessMap(std::shared_ptr<const Stg> input,
                       std::vector<petri::TransitionId> to_input,
                       std::vector<petri::TransitionId> removed_silent)
    : input_(std::move(input)),
      to_input_(std::move(to_input)),
      removed_(std::move(removed_silent)) {
    STGCC_REQUIRE(input_ != nullptr);
    std::sort(removed_.begin(), removed_.end());
    for (petri::TransitionId t : removed_) STGCC_REQUIRE(input_->is_dummy(t));
    for (std::size_t i = 0; i < to_input_.size(); ++i)
        if (to_input_[i] != static_cast<petri::TransitionId>(i))
            identity_transitions_ = false;
}

petri::TransitionId WitnessMap::translate_transition(
    petri::TransitionId reduced) const {
    STGCC_REQUIRE(reduced < to_input_.size());
    return to_input_[reduced];
}

std::optional<TranslatedState> WitnessMap::translate(
    const std::vector<petri::TransitionId>& trace) const {
    const petri::NetSystem& sys = input_->system();
    TranslatedState out;
    out.marking = sys.initial_marking();
    out.trace.reserve(trace.size());
    // Iteration bound against pathological removed-dummy cycles: secure
    // contraction cannot remove a token-generating loop, so any correct
    // replay fires each removed dummy a bounded number of times between
    // visible steps.  Exceeding the bound means a soundness bug upstream.
    const std::size_t bound = 64 * (removed_.size() + 1) + trace.size();
    std::size_t silent_fired = 0;
    const auto fire_first_enabled_removed = [&]() -> bool {
        for (petri::TransitionId d : removed_) {
            if (sys.enabled(out.marking, d)) {
                out.marking = sys.fire(out.marking, d);
                out.trace.push_back(d);
                return true;
            }
        }
        return false;
    };
    for (petri::TransitionId rt : trace) {
        if (rt >= to_input_.size()) return std::nullopt;
        const petri::TransitionId it = to_input_[rt];
        while (!sys.enabled(out.marking, it)) {
            if (++silent_fired > bound) return std::nullopt;
            if (!fire_first_enabled_removed()) return std::nullopt;
        }
        out.marking = sys.fire(out.marking, it);
        out.trace.push_back(it);
    }
    // Tau-closure: advance past still-enabled removed dummies so the final
    // marking is the canonical representative of its silent-move class
    // (type-1 security: firing a removed dummy never disables anything).
    while (fire_first_enabled_removed())
        if (++silent_fired > bound) return std::nullopt;
    return out;
}

bool WitnessChain::trace_identity() const {
    return std::all_of(maps_.begin(), maps_.end(),
                       [](const WitnessMap& m) { return m.identity(); });
}

std::optional<TranslatedState> WitnessChain::translate(
    const std::vector<petri::TransitionId>& trace) const {
    STGCC_REQUIRE(!maps_.empty());
    // Lift one pass at a time, innermost (last-applied) first.
    std::optional<TranslatedState> state;
    const std::vector<petri::TransitionId>* current = &trace;
    for (auto it = maps_.rbegin(); it != maps_.rend(); ++it) {
        state = it->translate(*current);
        if (!state) return std::nullopt;
        current = &state->trace;
    }
    return state;
}

petri::TransitionId WitnessChain::translate_transition(
    petri::TransitionId reduced) const {
    petri::TransitionId t = reduced;
    for (auto it = maps_.rbegin(); it != maps_.rend(); ++it)
        t = it->translate_transition(t);
    return t;
}

}  // namespace stgcc::stg::reduce
