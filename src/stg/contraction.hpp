// stgcc -- secure contraction of dummy (tau-labelled) transitions.
//
// The paper's algorithms assume dummy-free STGs (the tau case is deferred
// to its technical-report version); practical specifications, however,
// often carry dummies from high-level translation.  This module removes
// them by the standard product contraction: a dummy t with preset P and
// postset Q is replaced by the places {r_pq | p in P, q in Q} with
//   *r_pq = *p u (*q \ {t}),   r_pq* = (p* \ {t}) u q*,   M(r_pq) = M(p)+M(q),
// applied only when the contraction is *type-1 secure* (every place feeding
// t feeds nothing else, and P n Q = 0), which preserves the STG's
// branching behaviour on visible labels.  Contraction iterates to a fixed
// point; dummies that are never securely contractable are reported.
#pragma once

#include <string>
#include <vector>

#include "stg/stg.hpp"

namespace stgcc::stg {

/// True when the dummy transition t can be securely contracted (type-1):
/// t is a dummy, has no self-loop place, and every preset place of t has t
/// as its only consumer.
[[nodiscard]] bool is_contractable(const Stg& stg, petri::TransitionId t);

struct ContractionResult {
    Stg stg;                          ///< the contracted STG
    std::size_t contracted = 0;       ///< dummies removed
    std::vector<std::string> remaining_dummies;  ///< names still present
};

/// Contract securely contractable dummies to a fixed point.  Signals, the
/// labelled transitions and the model name are preserved; places are
/// renamed where merged.  The result may still contain dummies (see
/// remaining_dummies) when no secure rule applies to them.
///
/// `series_only` restricts the rule to dummies with exactly one preset and
/// one postset place (series agglomeration, the reduce-pass special case):
/// same security conditions, same "(p*q)" product naming, so composing the
/// restricted and general rules converges to the same net.
[[nodiscard]] ContractionResult contract_dummies(const Stg& input,
                                                 bool series_only = false);

}  // namespace stgcc::stg
