#include "stg/astg.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "stg/builder.hpp"

namespace stgcc::stg {

namespace {

[[noreturn]] void parse_fail(std::size_t line, const std::string& msg) {
    throw ModelError("astg parse error at line " + std::to_string(line) + ": " + msg);
}

/// Split a line into whitespace-separated tokens, keeping `<a,b>` groups
/// (which may contain no spaces in practice, but we tolerate `< a , b >`).
std::vector<std::string> tokenize(const std::string& line, std::size_t lineno) {
    std::vector<std::string> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
        if (std::isspace(static_cast<unsigned char>(line[i]))) {
            ++i;
            continue;
        }
        if (line[i] == '#') break;  // comment to end of line
        if (line[i] == '<') {
            const auto end = line.find('>', i);
            if (end == std::string::npos) parse_fail(lineno, "unterminated '<'");
            std::string tok = line.substr(i, end - i + 1);
            tok.erase(std::remove_if(tok.begin(), tok.end(),
                                     [](unsigned char c) { return std::isspace(c); }),
                      tok.end());
            tokens.push_back(std::move(tok));
            i = end + 1;
            // Allow a trailing =k token count glued to the group.
            if (i < line.size() && line[i] == '=') {
                const std::size_t start = i;
                while (i < line.size() &&
                       !std::isspace(static_cast<unsigned char>(line[i])))
                    ++i;
                tokens.back() += line.substr(start, i - start);
            }
            continue;
        }
        const std::size_t start = i;
        while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i])) &&
               line[i] != '#')
            ++i;
        tokens.push_back(line.substr(start, i - start));
    }
    return tokens;
}

/// Split an implicit-place token "<a,b>" into its two transition names.
std::pair<std::string, std::string> split_implicit(const std::string& tok,
                                                   std::size_t lineno) {
    const auto comma = tok.find(',');
    if (tok.size() < 5 || tok.front() != '<' || tok.back() != '>' ||
        comma == std::string::npos)
        parse_fail(lineno, "malformed implicit place token: " + tok);
    return {tok.substr(1, comma - 1), tok.substr(comma + 1, tok.size() - comma - 2)};
}

bool is_place_token(const std::string& tok, const Stg&, bool has_edge_chars) {
    // Heuristic per the ASTG convention: tokens ending in +/- (possibly with
    // /k) are transitions; everything else in the .graph section that is not
    // a declared dummy is a place.
    (void)has_edge_chars;
    return tok.find('+') == std::string::npos && tok.find('-') == std::string::npos;
}

}  // namespace

Stg parse_astg(std::istream& in) {
    std::optional<StgBuilder> builder;
    std::string model_name = "stg";
    std::vector<std::pair<std::string, SignalKind>> pending_signals;
    std::vector<std::string> pending_dummies;
    bool in_graph = false;
    bool saw_graph = false;
    bool saw_marking = false;
    bool saw_end = false;
    std::vector<std::string> declared_dummies;

    // Places are not declared in .g; remember every bare token we have seen
    // as a source/target so markings can reference them.
    auto ensure_builder = [&]() -> StgBuilder& {
        if (!builder) {
            builder.emplace(model_name);
            for (auto& [name, kind] : pending_signals) builder->signal(name, kind);
            for (auto& d : pending_dummies) builder->dummy(d);
        }
        return *builder;
    };

    std::string line;
    std::size_t lineno = 0;
    std::vector<std::vector<std::string>> graph_lines;
    std::vector<std::size_t> graph_linenos;
    std::vector<std::string> marking_tokens;
    std::size_t marking_lineno = 0;
    std::vector<std::pair<std::string, std::uint32_t>> capacities;

    while (std::getline(in, line)) {
        ++lineno;
        auto tokens = tokenize(line, lineno);
        if (tokens.empty()) continue;
        const std::string& head = tokens[0];
        if (head[0] == '.') {
            in_graph = false;
            if (head == ".model" || head == ".name") {
                if (tokens.size() >= 2) model_name = tokens[1];
            } else if (head == ".inputs" || head == ".outputs" ||
                       head == ".internal") {
                const SignalKind kind = head == ".inputs" ? SignalKind::Input
                                        : head == ".outputs" ? SignalKind::Output
                                                             : SignalKind::Internal;
                for (std::size_t i = 1; i < tokens.size(); ++i)
                    pending_signals.emplace_back(tokens[i], kind);
            } else if (head == ".dummy") {
                for (std::size_t i = 1; i < tokens.size(); ++i)
                    pending_dummies.push_back(tokens[i]);
            } else if (head == ".graph") {
                in_graph = true;
                saw_graph = true;
            } else if (head == ".marking") {
                saw_marking = true;
                marking_lineno = lineno;
                for (std::size_t i = 1; i < tokens.size(); ++i) {
                    std::string tok = tokens[i];
                    // Strip braces, tolerate "{a" / "b}" / "{" / "}".
                    std::erase(tok, '{');
                    std::erase(tok, '}');
                    if (!tok.empty()) marking_tokens.push_back(tok);
                }
            } else if (head == ".capacity") {
                for (std::size_t i = 1; i < tokens.size(); ++i) {
                    const auto eq = tokens[i].find('=');
                    if (eq == std::string::npos)
                        parse_fail(lineno, ".capacity entries must be place=k");
                    capacities.emplace_back(tokens[i].substr(0, eq),
                                            static_cast<std::uint32_t>(std::stoul(
                                                tokens[i].substr(eq + 1))));
                }
            } else if (head == ".end") {
                saw_end = true;
                break;
            } else {
                parse_fail(lineno, "unknown directive: " + head);
            }
            continue;
        }
        if (!in_graph) parse_fail(lineno, "node line outside .graph section");
        graph_lines.push_back(std::move(tokens));
        graph_linenos.push_back(lineno);
    }
    if (!saw_graph) parse_fail(lineno, "missing .graph section");
    if (!saw_end) parse_fail(lineno, "missing .end");

    StgBuilder& b = ensure_builder();

    // First pass: declare every place-looking token so arcs resolve them.
    Stg probe;  // unused; is_place_token ignores it
    std::vector<std::string> place_tokens;
    auto is_dummy_name = [&](const std::string& tok) {
        std::string base = tok;
        const auto slash = base.rfind('/');
        if (slash != std::string::npos) base = base.substr(0, slash);
        return std::find_if(pending_dummies.begin(), pending_dummies.end(),
                            [&](const std::string& d) { return d == base; }) !=
               pending_dummies.end();
    };
    for (std::size_t li = 0; li < graph_lines.size(); ++li) {
        for (const std::string& tok : graph_lines[li]) {
            if (tok.front() == '<') continue;  // implicit place reference
            if (!is_place_token(tok, probe, false)) continue;
            if (is_dummy_name(tok)) continue;
            if (std::find(place_tokens.begin(), place_tokens.end(), tok) ==
                place_tokens.end()) {
                place_tokens.push_back(tok);
                b.place(tok, 0);
            }
        }
    }

    // Second pass: arcs.  A graph line "src tgt1 tgt2 ..." adds arcs
    // src->tgt_i.  "<a,b>" as a source/target refers to the implicit place,
    // which is created by an a->b arc; we translate it accordingly.
    for (std::size_t li = 0; li < graph_lines.size(); ++li) {
        const auto& tokens = graph_lines[li];
        const std::size_t lno = graph_linenos[li];
        if (tokens.size() < 2)
            parse_fail(lno, "graph line needs a source and at least one target");
        if (tokens[0].front() == '<')
            parse_fail(lno, "implicit place cannot be a source node in .graph");
        for (std::size_t i = 1; i < tokens.size(); ++i) {
            if (tokens[i].front() == '<')
                parse_fail(lno, "implicit place cannot be a target node in .graph");
            b.arc(tokens[0], tokens[i]);
        }
    }

    // Marking.
    for (const std::string& tok : marking_tokens) {
        std::string name = tok;
        std::uint32_t count = 1;
        const auto eq = name.find('=');
        if (eq != std::string::npos && name.front() != '<') {
            count = static_cast<std::uint32_t>(std::stoul(name.substr(eq + 1)));
            name = name.substr(0, eq);
        } else if (name.front() == '<') {
            const auto eq2 = name.find(">=");
            if (eq2 != std::string::npos) {
                count = static_cast<std::uint32_t>(std::stoul(name.substr(eq2 + 2)));
                name = name.substr(0, eq2 + 1);
            }
        }
        if (name.front() == '<') {
            auto [from, to] = split_implicit(name, marking_lineno);
            for (std::uint32_t k = 0; k < count; ++k) b.token_between(from, to);
        } else {
            b.tokens(name, count);
        }
    }
    if (!saw_marking) parse_fail(lineno, "missing .marking section");
    (void)capacities;  // capacities are validated syntactically only

    return b.build();
}

Stg parse_astg_string(const std::string& text) {
    std::istringstream in(text);
    return parse_astg(in);
}

Stg load_astg_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw ModelError("cannot open ASTG file: " + path);
    Stg stg = parse_astg(in);
    return stg;
}

void write_astg(std::ostream& out, const Stg& stg) {
    const petri::Net& net = stg.net();
    out << ".model " << stg.name() << "\n";
    auto emit_signals = [&](const char* directive, SignalKind kind) {
        std::string line;
        for (SignalId z = 0; z < stg.num_signals(); ++z)
            if (stg.signal_kind(z) == kind) line += " " + stg.signal_name(z);
        if (!line.empty()) out << directive << line << "\n";
    };
    emit_signals(".inputs", SignalKind::Input);
    emit_signals(".outputs", SignalKind::Output);
    emit_signals(".internal", SignalKind::Internal);
    {
        std::string line;
        for (petri::TransitionId t = 0; t < net.num_transitions(); ++t)
            if (stg.is_dummy(t)) {
                // Dummy "signals" are the transition base names.
                std::string base = net.transition_name(t);
                const auto slash = base.rfind('/');
                if (slash != std::string::npos) base = base.substr(0, slash);
                if (line.find(" " + base) == std::string::npos) line += " " + base;
            }
        if (!line.empty()) out << ".dummy" << line << "\n";
    }

    // A place is collapsible when it has exactly one producer and one
    // consumer; it is then rendered as a direct t->u arc and appears in the
    // marking as <t,u>.
    auto collapsible = [&](petri::PlaceId p) {
        return net.pre_of_place(p).size() == 1 && net.post_of_place(p).size() == 1;
    };

    out << ".graph\n";
    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        std::string line = net.transition_name(t);
        bool any = false;
        for (petri::PlaceId p : net.post(t)) {
            any = true;
            if (collapsible(p))
                line += " " + net.transition_name(net.post_of_place(p)[0]);
            else
                line += " " + net.place_name(p);
        }
        if (any) out << line << "\n";
    }
    for (petri::PlaceId p = 0; p < net.num_places(); ++p) {
        if (collapsible(p)) continue;
        if (net.post_of_place(p).empty()) continue;
        std::string line = net.place_name(p);
        for (petri::TransitionId t : net.post_of_place(p))
            line += " " + net.transition_name(t);
        out << line << "\n";
    }

    out << ".marking {";
    const petri::Marking& m0 = stg.system().initial_marking();
    bool first = true;
    for (petri::PlaceId p = 0; p < net.num_places(); ++p) {
        if (m0[p] == 0) continue;
        out << (first ? " " : " ");
        first = false;
        std::string name;
        if (collapsible(p))
            name = "<" + net.transition_name(net.pre_of_place(p)[0]) + "," +
                   net.transition_name(net.post_of_place(p)[0]) + ">";
        else
            name = net.place_name(p);
        out << name;
        if (m0[p] > 1) out << "=" << m0[p];
    }
    out << " }\n.end\n";
}

std::string write_astg_string(const Stg& stg) {
    std::ostringstream out;
    write_astg(out, stg);
    return out.str();
}

void save_astg_file(const std::string& path, const Stg& stg) {
    std::ofstream out(path);
    if (!out) throw ModelError("cannot write ASTG file: " + path);
    write_astg(out, stg);
}

}  // namespace stgcc::stg
