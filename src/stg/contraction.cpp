#include "stg/contraction.hpp"

#include <algorithm>
#include <set>

namespace stgcc::stg {

namespace {

/// Mutable working copy of the net (petri::Net does not support removal).
struct WorkNet {
    struct Place {
        std::string name;
        std::uint32_t tokens = 0;
        std::set<std::size_t> pre, post;  // transition indices
        bool alive = true;
    };
    struct Transition {
        std::string name;
        std::optional<Label> label;
        std::set<std::size_t> pre, post;  // place indices
        bool alive = true;
    };
    std::vector<Place> places;
    std::vector<Transition> transitions;
};

WorkNet to_work_net(const Stg& stg) {
    WorkNet w;
    const petri::Net& net = stg.net();
    w.places.resize(net.num_places());
    w.transitions.resize(net.num_transitions());
    for (petri::PlaceId p = 0; p < net.num_places(); ++p) {
        w.places[p].name = net.place_name(p);
        w.places[p].tokens = stg.system().initial_marking()[p];
    }
    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        w.transitions[t].name = net.transition_name(t);
        if (!stg.is_dummy(t)) w.transitions[t].label = stg.label(t);
        for (petri::PlaceId p : net.pre(t)) {
            w.transitions[t].pre.insert(p);
            w.places[p].post.insert(t);
        }
        for (petri::PlaceId p : net.post(t)) {
            w.transitions[t].post.insert(p);
            w.places[p].pre.insert(t);
        }
    }
    return w;
}

bool contractable(const WorkNet& w, std::size_t t) {
    const auto& tr = w.transitions[t];
    if (!tr.alive || tr.label.has_value()) return false;
    if (tr.pre.empty() || tr.post.empty()) return false;
    for (std::size_t p : tr.pre) {
        if (tr.post.count(p)) return false;  // self-loop
        if (w.places[p].post.size() != 1) return false;  // type-1 security
    }
    // Arc-weight soundness: a transition adjacent to both p in *t and q in
    // t* would need a weight-2 arc to the product place; ordinary nets
    // cannot express that, so such dummies are left alone.
    for (std::size_t p : tr.pre) {
        for (std::size_t q : tr.post) {
            for (std::size_t u : w.places[p].pre)
                if (w.places[q].pre.count(u)) return false;
            for (std::size_t u : w.places[p].post)
                if (u != t && w.places[q].post.count(u)) return false;
        }
    }
    return true;
}

void contract(WorkNet& w, std::size_t t) {
    auto& tr = w.transitions[t];
    // Create the product places.
    for (std::size_t p : tr.pre) {
        for (std::size_t q : tr.post) {
            WorkNet::Place r;
            r.name = "(" + w.places[p].name + "*" + w.places[q].name + ")";
            r.tokens = w.places[p].tokens + w.places[q].tokens;
            for (std::size_t u : w.places[p].pre) r.pre.insert(u);
            for (std::size_t u : w.places[q].pre)
                if (u != t) r.pre.insert(u);
            for (std::size_t u : w.places[p].post)
                if (u != t) r.post.insert(u);
            for (std::size_t u : w.places[q].post) r.post.insert(u);
            const std::size_t rid = w.places.size();
            w.places.push_back(std::move(r));
            for (std::size_t u : w.places[rid].pre)
                w.transitions[u].post.insert(rid);
            for (std::size_t u : w.places[rid].post)
                w.transitions[u].pre.insert(rid);
        }
    }
    // Remove t and the old places.
    auto kill_place = [&](std::size_t p) {
        w.places[p].alive = false;
        for (std::size_t u : w.places[p].pre) w.transitions[u].post.erase(p);
        for (std::size_t u : w.places[p].post) w.transitions[u].pre.erase(p);
    };
    const std::set<std::size_t> pre = tr.pre, post = tr.post;
    tr.alive = false;
    for (std::size_t p : pre) kill_place(p);
    for (std::size_t q : post) kill_place(q);
    // Detach t from any leftovers (already handled via kill_place).
    tr.pre.clear();
    tr.post.clear();
}

Stg to_stg(const Stg& original, const WorkNet& w) {
    Stg out;
    out.set_name(original.name());
    for (SignalId z = 0; z < original.num_signals(); ++z)
        out.add_signal(original.signal_name(z), original.signal_kind(z));

    std::vector<petri::PlaceId> place_map(w.places.size(), petri::kNoPlace);
    std::vector<petri::TransitionId> trans_map(w.transitions.size(),
                                               petri::kNoTransition);
    for (std::size_t p = 0; p < w.places.size(); ++p)
        if (w.places[p].alive) place_map[p] = out.add_place(w.places[p].name);
    for (std::size_t t = 0; t < w.transitions.size(); ++t) {
        if (!w.transitions[t].alive) continue;
        trans_map[t] = w.transitions[t].label
                           ? out.add_transition(w.transitions[t].name,
                                                *w.transitions[t].label)
                           : out.add_dummy_transition(w.transitions[t].name);
    }
    for (std::size_t t = 0; t < w.transitions.size(); ++t) {
        if (!w.transitions[t].alive) continue;
        for (std::size_t p : w.transitions[t].pre)
            out.add_arc_pt(place_map[p], trans_map[t]);
        for (std::size_t p : w.transitions[t].post)
            out.add_arc_tp(trans_map[t], place_map[p]);
    }
    petri::Marking m0(out.net().num_places());
    for (std::size_t p = 0; p < w.places.size(); ++p)
        if (w.places[p].alive) m0.set(place_map[p], w.places[p].tokens);
    out.set_initial_marking(std::move(m0));
    return out;
}

}  // namespace

bool is_contractable(const Stg& stg, petri::TransitionId t) {
    STGCC_REQUIRE(t < stg.net().num_transitions());
    return contractable(to_work_net(stg), t);
}

ContractionResult contract_dummies(const Stg& input, bool series_only) {
    WorkNet w = to_work_net(input);
    ContractionResult result;
    const auto eligible = [&](std::size_t t) {
        if (series_only && (w.transitions[t].pre.size() != 1 ||
                            w.transitions[t].post.size() != 1))
            return false;
        return contractable(w, t);
    };
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t t = 0; t < w.transitions.size(); ++t) {
            if (eligible(t)) {
                contract(w, t);
                ++result.contracted;
                progress = true;
            }
        }
    }
    for (const auto& tr : w.transitions)
        if (tr.alive && !tr.label.has_value())
            result.remaining_dummies.push_back(tr.name);
    result.stg = to_stg(input, w);
    return result;
}

}  // namespace stgcc::stg
