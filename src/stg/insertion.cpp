#include "stg/insertion.hpp"

namespace stgcc::stg {

namespace {

void copy_signals(const Stg& input, Stg& out) {
    for (SignalId z = 0; z < input.num_signals(); ++z)
        out.add_signal(input.signal_name(z), input.signal_kind(z));
}

}  // namespace

Stg insert_signal_transition(const Stg& input, petri::TransitionId after,
                             Label label, const std::string& transition_name) {
    const petri::Net& net = input.net();
    STGCC_REQUIRE(after < net.num_transitions());
    STGCC_REQUIRE(label.signal < input.num_signals());

    Stg out;
    out.set_name(input.name());
    copy_signals(input, out);

    // Transitions first (same ids), then the new one.
    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        if (input.is_dummy(t))
            out.add_dummy_transition(net.transition_name(t));
        else
            out.add_transition(net.transition_name(t), input.label(t));
    }
    const petri::TransitionId fresh =
        out.add_transition(transition_name, label);

    // Places keep their ids; add the splice place at the end.
    for (petri::PlaceId p = 0; p < net.num_places(); ++p)
        out.add_place(net.place_name(p));
    const petri::PlaceId splice = out.add_place("<" + net.transition_name(after) +
                                                "," + transition_name + ">");

    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        for (petri::PlaceId p : net.pre(t)) out.add_arc_pt(p, t);
        for (petri::PlaceId p : net.post(t)) {
            if (t == after)
                out.add_arc_tp(fresh, p);  // re-routed through the new event
            else
                out.add_arc_tp(t, p);
        }
    }
    out.add_arc_tp(after, splice);
    out.add_arc_pt(splice, fresh);

    petri::Marking m0(out.net().num_places());
    for (petri::PlaceId p = 0; p < net.num_places(); ++p)
        m0.set(p, input.system().initial_marking()[p]);
    out.set_initial_marking(std::move(m0));
    return out;
}

Stg insert_signal_after_place(const Stg& input, petri::PlaceId after,
                              Label label, const std::string& transition_name) {
    const petri::Net& net = input.net();
    STGCC_REQUIRE(after < net.num_places());
    STGCC_REQUIRE(label.signal < input.num_signals());

    Stg out;
    out.set_name(input.name());
    copy_signals(input, out);
    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        if (input.is_dummy(t))
            out.add_dummy_transition(net.transition_name(t));
        else
            out.add_transition(net.transition_name(t), input.label(t));
    }
    const petri::TransitionId fresh =
        out.add_transition(transition_name, label);
    for (petri::PlaceId p = 0; p < net.num_places(); ++p)
        out.add_place(net.place_name(p));
    const petri::PlaceId tail =
        out.add_place("<" + transition_name + "," + net.place_name(after) + ">");

    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        for (petri::PlaceId p : net.pre(t))
            out.add_arc_pt(p == after ? tail : p, t);
        for (petri::PlaceId p : net.post(t)) out.add_arc_tp(t, p);
    }
    out.add_arc_pt(after, fresh);
    out.add_arc_tp(fresh, tail);

    petri::Marking m0(out.net().num_places());
    for (petri::PlaceId p = 0; p < net.num_places(); ++p)
        m0.set(p, input.system().initial_marking()[p]);
    out.set_initial_marking(std::move(m0));
    return out;
}

Stg insert_signal_after_transitions(const Stg& input,
                                    const std::vector<petri::TransitionId>& after,
                                    Label label, const std::string& base_name) {
    STGCC_REQUIRE(!after.empty());
    Stg out = input;
    for (std::size_t j = 0; j < after.size(); ++j) {
        const std::string name =
            after.size() == 1 ? base_name
                              : base_name + "/" + std::to_string(j + 1);
        out = insert_signal_transition(out, after[j], label, name);
    }
    return out;
}

Stg insert_signal_before_place(const Stg& input, petri::PlaceId place,
                               Label label, const std::string& base_name) {
    const petri::Net& net = input.net();
    STGCC_REQUIRE(place < net.num_places());
    STGCC_REQUIRE(label.signal < input.num_signals());
    const auto producers = net.pre_of_place(place);
    if (producers.empty())
        throw ModelError("insert_signal_before_place: place " +
                         net.place_name(place) + " has no producers");

    Stg out;
    out.set_name(input.name());
    copy_signals(input, out);
    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        if (input.is_dummy(t))
            out.add_dummy_transition(net.transition_name(t));
        else
            out.add_transition(net.transition_name(t), input.label(t));
    }
    // One instance per producing arc.
    std::vector<petri::TransitionId> fresh;
    for (std::size_t j = 0; j < producers.size(); ++j)
        fresh.push_back(out.add_transition(
            producers.size() == 1 ? base_name
                                  : base_name + "/" + std::to_string(j + 1),
            label));

    for (petri::PlaceId p = 0; p < net.num_places(); ++p)
        out.add_place(net.place_name(p));
    std::vector<petri::PlaceId> splice;
    for (std::size_t j = 0; j < producers.size(); ++j)
        splice.push_back(out.add_place("<" + net.transition_name(producers[j]) +
                                       "," + base_name + "/" +
                                       std::to_string(j + 1) + ">"));

    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        for (petri::PlaceId p : net.pre(t)) out.add_arc_pt(p, t);
        for (petri::PlaceId p : net.post(t)) {
            if (p == place) continue;  // re-routed below
            out.add_arc_tp(t, p);
        }
    }
    for (std::size_t j = 0; j < producers.size(); ++j) {
        out.add_arc_tp(producers[j], splice[j]);
        out.add_arc_pt(splice[j], fresh[j]);
        out.add_arc_tp(fresh[j], place);
    }

    petri::Marking m0(out.net().num_places());
    for (petri::PlaceId p = 0; p < net.num_places(); ++p)
        m0.set(p, input.system().initial_marking()[p]);
    out.set_initial_marking(std::move(m0));
    return out;
}

std::pair<Stg, SignalId> with_internal_signal(const Stg& input, std::string name) {
    Stg out;
    out.set_name(input.name());
    copy_signals(input, out);
    const SignalId z = out.add_signal(std::move(name), SignalKind::Internal);
    const petri::Net& net = input.net();
    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        if (input.is_dummy(t))
            out.add_dummy_transition(net.transition_name(t));
        else
            out.add_transition(net.transition_name(t), input.label(t));
    }
    for (petri::PlaceId p = 0; p < net.num_places(); ++p)
        out.add_place(net.place_name(p));
    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        for (petri::PlaceId p : net.pre(t)) out.add_arc_pt(p, t);
        for (petri::PlaceId p : net.post(t)) out.add_arc_tp(t, p);
    }
    out.set_initial_marking(input.system().initial_marking());
    return {std::move(out), z};
}

Stg hide_signal(const Stg& input, SignalId z) {
    STGCC_REQUIRE(z < input.num_signals());
    Stg out;
    out.set_name(input.name());
    copy_signals(input, out);
    const petri::Net& net = input.net();
    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        if (!input.is_dummy(t) && input.label(t).signal == z)
            out.add_dummy_transition(net.transition_name(t));
        else if (input.is_dummy(t))
            out.add_dummy_transition(net.transition_name(t));
        else
            out.add_transition(net.transition_name(t), input.label(t));
    }
    for (petri::PlaceId p = 0; p < net.num_places(); ++p)
        out.add_place(net.place_name(p));
    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
        for (petri::PlaceId p : net.pre(t)) out.add_arc_pt(p, t);
        for (petri::PlaceId p : net.post(t)) out.add_arc_tp(t, p);
    }
    out.set_initial_marking(input.system().initial_marking());
    return out;
}

}  // namespace stgcc::stg
