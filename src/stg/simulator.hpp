// stgcc -- interactive token-game simulation of STGs.
//
// A Simulator owns a current marking and signal code, fires transitions by
// id or by label text, records the trace, and supports undo/reset and
// random walks.  Useful for exploring witnesses reported by the checkers
// ("replay this path, then look around") and for randomized testing.
#pragma once

#include <optional>
#include <random>
#include <string_view>
#include <vector>

#include "stg/stg.hpp"

namespace stgcc::stg {

class Simulator {
public:
    /// `initial_code` is v0; obtain it from prefix consistency analysis or
    /// a StateGraph (see make_simulator for the convenient path).
    Simulator(const Stg& stg, Code initial_code);

    [[nodiscard]] const Stg& stg() const noexcept { return *stg_; }
    [[nodiscard]] const petri::Marking& marking() const noexcept { return marking_; }
    [[nodiscard]] const Code& code() const noexcept { return code_; }
    [[nodiscard]] const std::vector<petri::TransitionId>& trace() const noexcept {
        return trace_;
    }

    [[nodiscard]] std::vector<petri::TransitionId> enabled() const {
        return stg_->system().enabled_transitions(marking_);
    }
    [[nodiscard]] bool can_fire(petri::TransitionId t) const {
        return stg_->system().enabled(marking_, t);
    }
    [[nodiscard]] bool deadlocked() const { return enabled().empty(); }

    /// Fire a transition; returns false (and changes nothing) if disabled.
    bool fire(petri::TransitionId t);

    /// Fire by transition name ("dsr+", "lds+/2"); returns false when the
    /// name is unknown or the transition is disabled.
    bool fire_named(std::string_view name);

    /// Replay a whole sequence; stops at the first disabled transition and
    /// returns the number of transitions fired.
    std::size_t replay(const std::vector<petri::TransitionId>& sequence);

    /// Undo the last fired transition; returns false on an empty trace.
    bool undo();

    /// Back to the initial marking, clearing the trace.
    void reset();

    /// Fire up to `steps` uniformly random enabled transitions (stops early
    /// on deadlock); returns the number fired.
    std::size_t random_walk(std::size_t steps, std::mt19937& rng);

private:
    const Stg* stg_;
    petri::Marking initial_marking_;
    Code initial_code_;
    petri::Marking marking_;
    Code code_;
    std::vector<petri::TransitionId> trace_;
};

/// Build a simulator for a consistent, dummy-free STG, deriving the initial
/// code from the unfolding prefix (throws ModelError when inconsistent).
[[nodiscard]] Simulator make_simulator(const Stg& stg);

}  // namespace stgcc::stg
