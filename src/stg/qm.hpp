// stgcc -- exact two-level minimisation of next-state functions.
//
// Complements the greedy expansion in logic.hpp with an exact
// Quine-McCluskey-style procedure that works directly on the care sets
// (no don't-care enumeration): a cube is a *prime implicant* when it
// intersects no OFF code and dropping any further literal would; the
// minimum cover is found by branch-and-bound set covering of the ON codes
// with primes.  Exponential in the worst case -- intended for the
// benchmark-sized functions (a handful of cubes over <= ~20 signals).
#pragma once

#include "stg/logic.hpp"

namespace stgcc::stg {

struct MinimizeOptions {
    /// Abort with ModelError when prime generation exceeds this count.
    std::size_t max_primes = 200'000;
    /// Abort with ModelError when the covering search exceeds this many
    /// branch nodes.
    std::size_t max_nodes = 5'000'000;
};

/// All prime implicants of the (ON, OFF) function (maximal cubes avoiding
/// OFF that cover at least one ON code).
[[nodiscard]] std::vector<Cube> prime_implicants(const std::vector<Code>& on,
                                                 const std::vector<Code>& off,
                                                 std::size_t width,
                                                 MinimizeOptions opts = {});

/// A minimum-cardinality cover of ON by prime implicants.
[[nodiscard]] Cover minimize_exact(const std::vector<Code>& on,
                                   const std::vector<Code>& off,
                                   std::size_t width, MinimizeOptions opts = {});

/// Exact minimisation of a signal's next-state function (see
/// LogicSynthesizer::synthesize for the greedy counterpart).
[[nodiscard]] NextStateFunction synthesize_exact(const StateGraph& sg, SignalId z,
                                                 MinimizeOptions opts = {});

}  // namespace stgcc::stg
