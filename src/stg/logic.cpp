#include "stg/logic.hpp"

#include <unordered_map>

namespace stgcc::stg {

std::string Cube::to_string(const Stg& stg) const {
    std::string out;
    bool first = true;
    care.for_each([&](std::size_t z) {
        if (!first) out += ' ';
        first = false;
        out += stg.signal_name(static_cast<SignalId>(z));
        if (!value.test(z)) out += '\'';
    });
    return first ? "1" : out;
}

std::string Cover::to_string(const Stg& stg) const {
    if (cubes.empty()) return "0";
    std::string out;
    for (std::size_t i = 0; i < cubes.size(); ++i) {
        if (i) out += " + ";
        out += cubes[i].to_string(stg);
    }
    return out;
}

Unateness cover_unateness(const Cover& cover, SignalId var) {
    bool pos = false, neg = false;
    for (const Cube& c : cover.cubes) {
        if (var >= c.care.size() || !c.care.test(var)) continue;
        (c.value.test(var) ? pos : neg) = true;
    }
    if (pos && neg) return Unateness::Binate;
    if (pos) return Unateness::PositiveUnate;
    if (neg) return Unateness::NegativeUnate;
    return Unateness::Independent;
}

bool is_monotonic(const Cover& cover) {
    if (cover.cubes.empty()) return true;
    const std::size_t width = cover.cubes[0].care.size();
    bool any_positive = false, any_negative = false;
    for (SignalId z = 0; z < width; ++z) {
        switch (cover_unateness(cover, z)) {
            case Unateness::PositiveUnate: any_positive = true; break;
            case Unateness::NegativeUnate: any_negative = true; break;
            case Unateness::Binate: return false;
            case Unateness::Independent: break;
        }
    }
    // Monotonic = non-decreasing in every input (all positive) or
    // non-increasing in every input (all negative, a NAND/NOR-style gate);
    // a mix needs an input inverter (paper, section 6).
    return !(any_positive && any_negative);
}

LogicSynthesizer::LogicSynthesizer(const StateGraph& sg) : sg_(&sg) {
    if (!sg.consistent())
        throw ModelError("logic synthesis requires a consistent STG: " +
                         sg.inconsistency_reason());
}

LogicSynthesizer::OnOff LogicSynthesizer::on_off_sets(SignalId z) const {
    const Stg& stg = sg_->stg();
    STGCC_REQUIRE(z < stg.num_signals());
    // Nxt_z per distinct reachable code; a clash is a CSC violation for z.
    std::unordered_map<BitVec, bool, BitVecHash> nxt_of_code;
    for (petri::StateId s = 0; s < sg_->num_states(); ++s) {
        const bool nxt = sg_->nxt(s, z);
        auto [it, inserted] = nxt_of_code.emplace(sg_->code(s), nxt);
        if (!inserted && it->second != nxt)
            throw ModelError("signal " + stg.signal_name(z) +
                             " has a CSC conflict: code " +
                             it->first.to_string() +
                             " occurs with both next-state values");
    }
    OnOff sets;
    for (const auto& [code, nxt] : nxt_of_code)
        (nxt ? sets.on : sets.off).push_back(code);
    return sets;
}

namespace {

/// Greedy single-pass expansion of the ON minterms against the OFF-set.
/// `drop_zero_first` biases the literal-removal order: removing the
/// complemented (0-valued) literals first steers p-normal functions to
/// all-positive covers (and dually for n-normal ones), so that normal
/// signals always synthesise to monotonic covers.
Cover expand_cover(const std::vector<Code>& on, const std::vector<Code>& off,
                   std::size_t width, bool drop_zero_first) {
    Cover cover;
    for (const Code& minterm : on) {
        if (cover.covers(minterm)) continue;
        Cube cube;
        cube.care = BitVec(width);
        cube.care.set_all();
        cube.value = minterm;
        auto try_drop = [&](SignalId v) {
            cube.care.reset(v);
            const bool old_value = cube.value.test(v);
            cube.value.reset(v);  // canonical: value bits only inside care
            for (const Code& o : off)
                if (cube.covers(o)) {
                    cube.care.set(v);
                    cube.value.assign_bit(v, old_value);
                    return;
                }
        };
        for (int phase = 0; phase < 2; ++phase)
            for (SignalId v = 0; v < width; ++v)
                if (minterm.test(v) == (drop_zero_first == (phase == 1)))
                    try_drop(v);
        cover.cubes.push_back(std::move(cube));
    }
    // Irredundancy pass: drop cubes whose ON codes are covered elsewhere.
    for (std::size_t i = cover.cubes.size(); i-- > 0;) {
        Cover rest;
        for (std::size_t j = 0; j < cover.cubes.size(); ++j)
            if (j != i) rest.cubes.push_back(cover.cubes[j]);
        bool redundant = true;
        for (const Code& minterm : on)
            if (cover.cubes[i].covers(minterm) && !rest.covers(minterm)) {
                redundant = false;
                break;
            }
        if (redundant) cover.cubes = std::move(rest.cubes);
    }
    return cover;
}

}  // namespace

NextStateFunction LogicSynthesizer::synthesize(SignalId z) const {
    const OnOff sets = on_off_sets(z);
    NextStateFunction fn;
    fn.signal = z;
    fn.on_codes = sets.on.size();
    fn.off_codes = sets.off.size();

    const std::size_t width = sg_->stg().num_signals();
    // Try both removal orders; prefer a monotonic cover, then the smaller.
    Cover a = expand_cover(sets.on, sets.off, width, /*drop_zero_first=*/true);
    if (is_monotonic(a)) {
        fn.cover = std::move(a);
        return fn;
    }
    Cover b = expand_cover(sets.on, sets.off, width, /*drop_zero_first=*/false);
    if (is_monotonic(b)) {
        fn.cover = std::move(b);
        return fn;
    }
    fn.cover = a.cubes.size() <= b.cubes.size() ? std::move(a) : std::move(b);
    return fn;
}

std::vector<NextStateFunction> LogicSynthesizer::synthesize_all() const {
    std::vector<NextStateFunction> out;
    for (SignalId z : sg_->stg().circuit_driven_signals())
        out.push_back(synthesize(z));
    return out;
}

std::optional<Cover> LogicSynthesizer::monotone_cover(SignalId z,
                                                      bool positive) const {
    const OnOff sets = on_off_sets(z);
    const std::size_t width = sg_->stg().num_signals();
    Cover cover;
    for (const Code& on : sets.on) {
        Cube cube;
        if (positive) {
            // Require exactly the 1-bits: covers every code above `on`.
            cube.care = on;
            cube.value = on;
        } else {
            // Require exactly the 0-bits (complemented): covers below `on`.
            cube.care = on;
            cube.care.resize(width);
            BitVec all(width);
            all.set_all();
            cube.care ^= all;  // complement of the 1-bits
            cube.value = BitVec(width);
        }
        cover.cubes.push_back(std::move(cube));
    }
    for (const Code& off : sets.off)
        if (cover.covers(off)) return std::nullopt;
    return cover;
}

}  // namespace stgcc::stg
