#include "stg/benchmarks.hpp"

#include "stg/builder.hpp"

namespace stgcc::stg::bench {

namespace {
std::string idx(const std::string& base, int i) { return base + std::to_string(i); }
}  // namespace

Stg vme_bus() {
    StgBuilder b("vme-bus");
    b.input("dsr").input("ldtack");
    b.output("dtack").output("lds").output("d");
    b.arc("dsr+", "lds+");
    b.arc("lds+", "ldtack+");
    b.arc("ldtack+", "d+");
    b.arc("d+", "dtack+");
    b.arc("dtack+", "dsr-");
    b.arc("dsr-", "d-");
    b.arc("d-", "dtack-");
    b.arc("d-", "lds-");
    b.arc("lds-", "ldtack-");
    b.arc("dtack-", "dsr+");
    b.arc("ldtack-", "lds+");
    b.token_between("dtack-", "dsr+");
    b.token_between("ldtack-", "lds+");
    return b.build();
}

Stg vme_bus_csc_resolved() {
    StgBuilder b("vme-bus-csc");
    b.input("dsr").input("ldtack");
    b.output("dtack").output("lds").output("d");
    b.internal("csc");
    // Arcs follow the paper's implementation equations: csc = dsr (csc +
    // !ldtack) (csc+ after dsr+ with ldtack low, csc- after dsr-),
    // d = ldtack csc (d- driven by csc-), dtack = d, lds = d + csc.
    b.arc("dsr+", "csc+");
    b.arc("ldtack-", "csc+");
    b.arc("csc+", "lds+");
    b.arc("lds+", "ldtack+");
    b.arc("ldtack+", "d+");
    b.arc("d+", "dtack+");
    b.arc("dtack+", "dsr-");
    b.arc("dsr-", "csc-");
    b.arc("csc-", "d-");
    b.arc("d-", "dtack-");
    b.arc("d-", "lds-");
    b.arc("lds-", "ldtack-");
    b.arc("dtack-", "dsr+");
    b.token_between("dtack-", "dsr+");
    b.token_between("ldtack-", "csc+");
    return b.build();
}

Stg parallel_handshakes(int n) {
    STGCC_REQUIRE(n >= 1);
    StgBuilder b("par-" + std::to_string(n));
    for (int i = 1; i <= n; ++i) {
        b.input(idx("r", i)).output(idx("a", i));
        b.arc(idx("r", i) + "+", idx("a", i) + "+");
        b.arc(idx("a", i) + "+", idx("r", i) + "-");
        b.arc(idx("r", i) + "-", idx("a", i) + "-");
        b.arc(idx("a", i) + "-", idx("r", i) + "+");
        b.token_between(idx("a", i) + "-", idx("r", i) + "+");
    }
    return b.build();
}

Stg handshake_pipeline(int n) {
    STGCC_REQUIRE(n >= 1);
    StgBuilder b("pipe-" + std::to_string(n));
    for (int i = 1; i <= n; ++i) {
        if (i == 1)
            b.input(idx("r", i));
        else
            b.internal(idx("r", i));
        b.output(idx("a", i));
    }
    for (int i = 1; i <= n; ++i) {
        b.arc(idx("r", i) + "+", idx("a", i) + "+");
        b.arc(idx("a", i) + "+", idx("r", i) + "-");
        b.arc(idx("r", i) + "-", idx("a", i) + "-");
        b.arc(idx("a", i) + "-", idx("r", i) + "+");
        b.token_between(idx("a", i) + "-", idx("r", i) + "+");
    }
    for (int i = 1; i < n; ++i) {
        // Stage i's ack launches stage i+1's request; stage i+1's ack
        // releases stage i's next request (slack-1 backpressure).
        b.arc(idx("a", i) + "+", idx("r", i + 1) + "+");
        b.arc(idx("a", i + 1) + "+", idx("r", i) + "+");
        b.token_between(idx("a", i + 1) + "+", idx("r", i) + "+");
    }
    return b.build();
}

Stg sequential_handshakes(int n) {
    STGCC_REQUIRE(n >= 1);
    StgBuilder b("seq-" + std::to_string(n));
    for (int i = 1; i <= n; ++i) b.input(idx("r", i)).output(idx("a", i));
    for (int i = 1; i <= n; ++i) {
        b.arc(idx("r", i) + "+", idx("a", i) + "+");
        b.arc(idx("a", i) + "+", idx("r", i) + "-");
        b.arc(idx("r", i) + "-", idx("a", i) + "-");
        const std::string next = idx("r", i == n ? 1 : i + 1) + "+";
        b.arc(idx("a", i) + "-", next);
    }
    b.token_between(idx("a", n) + "-", "r1+");
    return b.build();
}

Stg johnson_counter(int k) {
    STGCC_REQUIRE(k >= 1);
    StgBuilder b("johnson-" + std::to_string(k));
    for (int i = 1; i <= k; ++i) {
        if (i == 1)
            b.input(idx("z", i));
        else
            b.output(idx("z", i));
    }
    std::vector<std::string> cycle;
    for (int i = 1; i <= k; ++i) cycle.push_back(idx("z", i) + "+");
    for (int i = 1; i <= k; ++i) cycle.push_back(idx("z", i) + "-");
    for (std::size_t i = 0; i < cycle.size(); ++i)
        b.arc(cycle[i], cycle[(i + 1) % cycle.size()]);
    b.token_between(cycle.back(), cycle.front());
    return b.build();
}

Stg phase_envelope(int rounds) {
    STGCC_REQUIRE(rounds >= 1);
    StgBuilder b("envelope-" + std::to_string(rounds));
    b.input("env").output("a").output("b");
    // env+ ; rounds x (a+ b+ a- b-) ; env- ; rounds x (a+ b+ a- b-) ; repeat.
    std::vector<std::string> cycle;
    auto round = [&](int j, const char* phase) {
        cycle.push_back("a+/" + std::string(phase) + std::to_string(j));
        cycle.push_back("b+/" + std::string(phase) + std::to_string(j));
        cycle.push_back("a-/" + std::string(phase) + std::to_string(j));
        cycle.push_back("b-/" + std::string(phase) + std::to_string(j));
    };
    cycle.push_back("env+");
    for (int j = 1; j <= rounds; ++j) round(j, "1");
    cycle.push_back("env-");
    for (int j = 1; j <= rounds; ++j) round(j, "2");
    for (std::size_t i = 0; i < cycle.size(); ++i)
        b.arc(cycle[i], cycle[(i + 1) % cycle.size()]);
    b.token_between(cycle.back(), cycle.front());
    return b.build();
}

Stg token_ring(int stations) {
    STGCC_REQUIRE(stations >= 1);
    StgBuilder b("ring-" + std::to_string(stations));
    for (int i = 1; i <= stations; ++i) {
        b.input(idx("req", i)).input(idx("skip", i));
        b.output(idx("gnt", i)).output(idx("rr", i));
    }
    for (int i = 1; i <= stations; ++i) {
        // Free choice at the token place: the environment either requests
        // service or lets the token pass.
        b.place(idx("tok", i), i == 1 ? 1 : 0);
        b.place(idx("done", i), 0);
    }
    for (int i = 1; i <= stations; ++i) {
        // Serve branch: req+ gnt+ req- gnt-.
        b.arc(idx("tok", i), idx("req", i) + "+");
        b.arc(idx("req", i) + "+", idx("gnt", i) + "+");
        b.arc(idx("gnt", i) + "+", idx("req", i) + "-");
        b.arc(idx("req", i) + "-", idx("gnt", i) + "-");
        b.arc(idx("gnt", i) + "-", idx("done", i));
        // Skip branch: skip+ skip-.
        b.arc(idx("tok", i), idx("skip", i) + "+");
        b.arc(idx("skip", i) + "+", idx("skip", i) + "-");
        b.arc(idx("skip", i) + "-", idx("done", i));
        // Pass the token on the ring output.
        b.arc(idx("done", i), idx("rr", i) + "+");
        b.arc(idx("rr", i) + "+", idx("rr", i) + "-");
        const int next = i == stations ? 1 : i + 1;
        b.arc(idx("rr", i) + "-", idx("tok", next));
    }
    return b.build();
}

Stg duplex_channel(int data_bits, bool coded_direction, bool power_control) {
    STGCC_REQUIRE(data_bits >= 1);
    StgBuilder b(std::string("duplex-") + std::to_string(data_bits) +
                 (coded_direction ? "-coded" : "") + (power_control ? "-pc" : ""));
    b.input("asr").input("bsr");
    for (int j = 1; j <= data_bits; ++j) {
        b.output(idx("ad", j)).input(idx("bk", j));  // A -> B data / ack
        b.output(idx("bd", j)).input(idx("ak", j));  // B -> A data / ack
    }
    if (coded_direction) b.internal("dir");
    if (power_control) b.output("apc").output("bpc");
    b.place("chan_a", 1);
    b.place("chan_b", 0);

    auto side = [&](const char* sr, const char* data, const char* ack,
                    const std::string& from_chan, const std::string& to_chan,
                    const std::string& turnaround, const char* pc) {
        const std::string srp = std::string(sr) + "+";
        const std::string srm = std::string(sr) + "-";
        // Data burst: rising chain then falling chain over the data bits,
        // optionally wrapped in a power-control handshake (the "-MTR" /
        // "-MOD" modified protocol variants).
        std::vector<std::string> chain;
        if (power_control) chain.push_back(std::string(pc) + "+");
        for (int j = 1; j <= data_bits; ++j) {
            chain.push_back(idx(data, j) + "+");
            chain.push_back(idx(ack, j) + "+");
        }
        if (coded_direction) {
            // Resolved protocol: the direction toggle *and* the request's
            // return-to-zero both fire while the data signals are high, so
            // every state around them carries a data bit in its code and no
            // window clashes with an idle phase; a new request must wait for
            // the full completion of the falling burst.
            chain.push_back(turnaround);
            chain.push_back(srm);
        }
        for (int j = 1; j <= data_bits; ++j) {
            chain.push_back(idx(data, j) + "-");
            chain.push_back(idx(ack, j) + "-");
        }
        if (power_control) chain.push_back(std::string(pc) + "-");
        b.arc(srp, chain.front());
        b.arc(from_chan, chain.front());
        for (std::size_t i = 0; i + 1 < chain.size(); ++i)
            b.arc(chain[i], chain[i + 1]);
        if (coded_direction) {
            b.arc(chain.back(), srp);
            b.token_between(chain.back(), srp);
            b.arc(chain.back(), to_chan);
        } else {
            // Unresolved protocol: the request closes the transaction and
            // the channel turns around with every signal back at zero -- the
            // direction is invisible in the code (the classic conflict).
            b.arc(chain.back(), srm);
            b.arc(srm, to_chan);
            b.arc(srm, srp);
            b.token_between(srm, srp);
        }
    };
    side("asr", "ad", "bk", "chan_a", "chan_b", "dir+", "apc");
    side("bsr", "bd", "ak", "chan_b", "chan_a", "dir-", "bpc");
    return b.build();
}

namespace {

/// Emit the Muller C-element arcs for a chain of stage signals
/// prev -> s1 -> ... -> sn -> next:  s_i = C(s_{i-1}, !s_{i+1}).
/// The initially marked places reflect all-zero initial signal values.
void muller_chain(StgBuilder& b, const std::vector<std::string>& chain) {
    for (std::size_t i = 1; i + 1 < chain.size(); ++i) {
        b.arc(chain[i - 1] + "+", chain[i] + "+");
        b.arc(chain[i + 1] + "-", chain[i] + "+");
        b.token_between(chain[i + 1] + "-", chain[i] + "+");
        b.arc(chain[i - 1] + "-", chain[i] + "-");
        b.arc(chain[i + 1] + "+", chain[i] + "-");
    }
    // Consumer end: the last signal simply follows its predecessor.
    const std::string& last = chain.back();
    const std::string& prev = chain[chain.size() - 2];
    b.arc(prev + "+", last + "+");
    b.arc(prev + "-", last + "-");
}

}  // namespace

Stg muller_pipeline(int n) {
    STGCC_REQUIRE(n >= 1);
    StgBuilder b("muller-" + std::to_string(n));
    auto c = [](int i) { return "c" + std::to_string(i); };
    b.input(c(0));
    for (int i = 1; i <= n; ++i) b.output(c(i));
    b.input(c(n + 1));
    std::vector<std::string> chain;
    for (int i = 0; i <= n + 1; ++i) chain.push_back(c(i));
    muller_chain(b, chain);
    // Producer environment: c0 toggles against stage 1's acknowledgement.
    b.arc(c(1) + "-", c(0) + "+");
    b.token_between(c(1) + "-", c(0) + "+");
    b.arc(c(1) + "+", c(0) + "-");
    return b.build();
}

Stg counterflow(int stages, bool symmetric) {
    STGCC_REQUIRE(stages >= 1);
    StgBuilder b(std::string("cf-") + (symmetric ? "sym-" : "asym-") +
                 std::to_string(stages));
    // Two flows leave a common source r: the "instruction" flow f1..fn and
    // the counter-directed "result" flow g1..gm (m == n when symmetric);
    // both are Muller C-element chains ending in an always-ready sink input.
    const int m = symmetric ? stages : (stages + 1) / 2;
    b.input("r");
    for (int i = 1; i <= stages; ++i) b.output(idx("f", i));
    b.input("fs");  // forward sink
    for (int i = 1; i <= m; ++i) b.output(idx("g", i));
    b.input("gs");  // counterflow sink
    std::vector<std::string> f{"r"}, g{"r"};
    for (int i = 1; i <= stages; ++i) f.push_back(idx("f", i));
    f.push_back("fs");
    for (int i = 1; i <= m; ++i) g.push_back(idx("g", i));
    g.push_back("gs");
    muller_chain(b, f);
    muller_chain(b, g);
    // The source toggles once both first stages have acknowledged.
    b.arc("f1-", "r+");
    b.token_between("f1-", "r+");
    b.arc("f1+", "r-");
    b.arc("g1-", "r+");
    b.token_between("g1-", "r+");
    b.arc("g1+", "r-");
    return b.build();
}

Stg mutex_arbiter(int clients) {
    STGCC_REQUIRE(clients >= 1);
    StgBuilder b("mutex-" + std::to_string(clients));
    b.place("mutex", 1);
    for (int i = 1; i <= clients; ++i) {
        b.input(idx("r", i)).output(idx("g", i));
        // r+ (request) ; g+ takes the mutex ; r- ; g- releases it.
        b.arc(idx("r", i) + "+", idx("g", i) + "+");
        b.arc("mutex", idx("g", i) + "+");
        b.arc(idx("g", i) + "+", idx("r", i) + "-");
        b.arc(idx("r", i) + "-", idx("g", i) + "-");
        b.arc(idx("g", i) + "-", "mutex");
        b.arc(idx("g", i) + "-", idx("r", i) + "+");
        b.token_between(idx("g", i) + "-", idx("r", i) + "+");
    }
    return b.build();
}

std::vector<NamedBenchmark> table1_suite() {
    std::vector<NamedBenchmark> suite;
    suite.push_back({"LAZYRING", token_ring(2), false});
    suite.push_back({"RING", token_ring(4), false});
    suite.push_back({"DUP-4PH-A", duplex_channel(1, false, false), false});
    suite.push_back({"DUP-4PH-B", duplex_channel(2, false, false), false});
    suite.push_back({"DUP-4PH-MTR-A", duplex_channel(1, false, true), false});
    suite.push_back({"DUP-4PH-MTR-B", duplex_channel(2, false, true), false});
    suite.push_back({"DUP-MOD-A", duplex_channel(3, false, false), false});
    suite.push_back({"DUP-MOD-B", duplex_channel(3, false, true), false});
    suite.push_back({"DUP-MOD-C", duplex_channel(4, false, true), false});
    suite.push_back({"CF-SYM-A-CSC", counterflow(2, true), true});
    suite.push_back({"CF-SYM-B-CSC", counterflow(3, true), true});
    suite.push_back({"CF-SYM-C-CSC", counterflow(4, true), true});
    suite.push_back({"CF-SYM-D-CSC", counterflow(5, true), true});
    suite.push_back({"CF-ASYM-A-CSC", counterflow(5, false), true});
    suite.push_back({"CF-ASYM-B-CSC", counterflow(7, false), true});
    return suite;
}

}  // namespace stgcc::stg::bench
