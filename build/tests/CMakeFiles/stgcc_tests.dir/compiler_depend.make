# Empty compiler generated dependencies file for stgcc_tests.
# This may be replaced when dependencies are built.
