
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/astg_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/astg_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/astg_test.cpp.o.d"
  "/root/repo/tests/benchmarks_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/benchmarks_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/benchmarks_test.cpp.o.d"
  "/root/repo/tests/bitvec_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/bitvec_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/bitvec_test.cpp.o.d"
  "/root/repo/tests/builder_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/builder_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/builder_test.cpp.o.d"
  "/root/repo/tests/checkers_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/checkers_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/checkers_test.cpp.o.d"
  "/root/repo/tests/compat_solver_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/compat_solver_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/compat_solver_test.cpp.o.d"
  "/root/repo/tests/configuration_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/configuration_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/configuration_test.cpp.o.d"
  "/root/repo/tests/conflict_cores_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/conflict_cores_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/conflict_cores_test.cpp.o.d"
  "/root/repo/tests/contraction_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/contraction_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/contraction_test.cpp.o.d"
  "/root/repo/tests/corpus_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/corpus_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/corpus_test.cpp.o.d"
  "/root/repo/tests/encodings_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/encodings_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/encodings_test.cpp.o.d"
  "/root/repo/tests/extended_checks_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/extended_checks_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/extended_checks_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/ilp_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/ilp_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/ilp_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/invariants_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/invariants_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/invariants_test.cpp.o.d"
  "/root/repo/tests/logic_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/logic_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/logic_test.cpp.o.d"
  "/root/repo/tests/orders_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/orders_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/orders_test.cpp.o.d"
  "/root/repo/tests/persistency_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/persistency_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/persistency_test.cpp.o.d"
  "/root/repo/tests/petri_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/petri_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/petri_test.cpp.o.d"
  "/root/repo/tests/pnml_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/pnml_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/pnml_test.cpp.o.d"
  "/root/repo/tests/prefix_checks_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/prefix_checks_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/prefix_checks_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/qm_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/qm_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/qm_test.cpp.o.d"
  "/root/repo/tests/reachability_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/reachability_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/reachability_test.cpp.o.d"
  "/root/repo/tests/resolver_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/resolver_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/resolver_test.cpp.o.d"
  "/root/repo/tests/simulator_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/simulator_test.cpp.o.d"
  "/root/repo/tests/state_checks_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/state_checks_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/state_checks_test.cpp.o.d"
  "/root/repo/tests/state_graph_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/state_graph_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/state_graph_test.cpp.o.d"
  "/root/repo/tests/stg_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/stg_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/stg_test.cpp.o.d"
  "/root/repo/tests/unfolding_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/unfolding_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/unfolding_test.cpp.o.d"
  "/root/repo/tests/verifier_test.cpp" "tests/CMakeFiles/stgcc_tests.dir/verifier_test.cpp.o" "gcc" "tests/CMakeFiles/stgcc_tests.dir/verifier_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stgcc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
