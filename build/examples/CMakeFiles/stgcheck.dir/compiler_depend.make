# Empty compiler generated dependencies file for stgcheck.
# This may be replaced when dependencies are built.
