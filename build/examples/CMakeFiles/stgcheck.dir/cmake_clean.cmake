file(REMOVE_RECURSE
  "CMakeFiles/stgcheck.dir/stgcheck.cpp.o"
  "CMakeFiles/stgcheck.dir/stgcheck.cpp.o.d"
  "stgcheck"
  "stgcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
