# Empty dependencies file for stgcheck.
# This may be replaced when dependencies are built.
