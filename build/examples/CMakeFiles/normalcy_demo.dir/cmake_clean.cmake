file(REMOVE_RECURSE
  "CMakeFiles/normalcy_demo.dir/normalcy_demo.cpp.o"
  "CMakeFiles/normalcy_demo.dir/normalcy_demo.cpp.o.d"
  "normalcy_demo"
  "normalcy_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/normalcy_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
