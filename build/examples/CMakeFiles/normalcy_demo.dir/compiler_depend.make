# Empty compiler generated dependencies file for normalcy_demo.
# This may be replaced when dependencies are built.
