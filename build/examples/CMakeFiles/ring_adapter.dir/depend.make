# Empty dependencies file for ring_adapter.
# This may be replaced when dependencies are built.
