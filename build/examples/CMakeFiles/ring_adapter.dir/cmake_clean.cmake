file(REMOVE_RECURSE
  "CMakeFiles/ring_adapter.dir/ring_adapter.cpp.o"
  "CMakeFiles/ring_adapter.dir/ring_adapter.cpp.o.d"
  "ring_adapter"
  "ring_adapter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_adapter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
