file(REMOVE_RECURSE
  "CMakeFiles/bench_resolve.dir/bench_resolve.cpp.o"
  "CMakeFiles/bench_resolve.dir/bench_resolve.cpp.o.d"
  "bench_resolve"
  "bench_resolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
