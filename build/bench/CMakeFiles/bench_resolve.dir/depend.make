# Empty dependencies file for bench_resolve.
# This may be replaced when dependencies are built.
