file(REMOVE_RECURSE
  "CMakeFiles/bench_scalable.dir/bench_scalable.cpp.o"
  "CMakeFiles/bench_scalable.dir/bench_scalable.cpp.o.d"
  "bench_scalable"
  "bench_scalable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
