# Empty dependencies file for bench_scalable.
# This may be replaced when dependencies are built.
