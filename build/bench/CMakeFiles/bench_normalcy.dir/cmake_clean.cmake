file(REMOVE_RECURSE
  "CMakeFiles/bench_normalcy.dir/bench_normalcy.cpp.o"
  "CMakeFiles/bench_normalcy.dir/bench_normalcy.cpp.o.d"
  "bench_normalcy"
  "bench_normalcy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_normalcy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
