# Empty compiler generated dependencies file for bench_normalcy.
# This may be replaced when dependencies are built.
