file(REMOVE_RECURSE
  "CMakeFiles/bench_vme.dir/bench_vme.cpp.o"
  "CMakeFiles/bench_vme.dir/bench_vme.cpp.o.d"
  "bench_vme"
  "bench_vme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
