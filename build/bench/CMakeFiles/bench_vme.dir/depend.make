# Empty dependencies file for bench_vme.
# This may be replaced when dependencies are built.
