file(REMOVE_RECURSE
  "CMakeFiles/bench_deadlock.dir/bench_deadlock.cpp.o"
  "CMakeFiles/bench_deadlock.dir/bench_deadlock.cpp.o.d"
  "bench_deadlock"
  "bench_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
