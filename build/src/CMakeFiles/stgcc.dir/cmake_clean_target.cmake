file(REMOVE_RECURSE
  "libstgcc.a"
)
