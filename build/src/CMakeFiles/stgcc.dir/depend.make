# Empty dependencies file for stgcc.
# This may be replaced when dependencies are built.
