
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkers.cpp" "src/CMakeFiles/stgcc.dir/core/checkers.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/core/checkers.cpp.o.d"
  "/root/repo/src/core/coding_problem.cpp" "src/CMakeFiles/stgcc.dir/core/coding_problem.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/core/coding_problem.cpp.o.d"
  "/root/repo/src/core/compat_solver.cpp" "src/CMakeFiles/stgcc.dir/core/compat_solver.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/core/compat_solver.cpp.o.d"
  "/root/repo/src/core/conflict_cores.cpp" "src/CMakeFiles/stgcc.dir/core/conflict_cores.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/core/conflict_cores.cpp.o.d"
  "/root/repo/src/core/extended_checks.cpp" "src/CMakeFiles/stgcc.dir/core/extended_checks.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/core/extended_checks.cpp.o.d"
  "/root/repo/src/core/marking_expr.cpp" "src/CMakeFiles/stgcc.dir/core/marking_expr.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/core/marking_expr.cpp.o.d"
  "/root/repo/src/core/persistency.cpp" "src/CMakeFiles/stgcc.dir/core/persistency.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/core/persistency.cpp.o.d"
  "/root/repo/src/core/reach_solver.cpp" "src/CMakeFiles/stgcc.dir/core/reach_solver.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/core/reach_solver.cpp.o.d"
  "/root/repo/src/core/resolver.cpp" "src/CMakeFiles/stgcc.dir/core/resolver.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/core/resolver.cpp.o.d"
  "/root/repo/src/core/verifier.cpp" "src/CMakeFiles/stgcc.dir/core/verifier.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/core/verifier.cpp.o.d"
  "/root/repo/src/ilp/bb_solver.cpp" "src/CMakeFiles/stgcc.dir/ilp/bb_solver.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/ilp/bb_solver.cpp.o.d"
  "/root/repo/src/ilp/encodings.cpp" "src/CMakeFiles/stgcc.dir/ilp/encodings.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/ilp/encodings.cpp.o.d"
  "/root/repo/src/ilp/model.cpp" "src/CMakeFiles/stgcc.dir/ilp/model.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/ilp/model.cpp.o.d"
  "/root/repo/src/petri/invariants.cpp" "src/CMakeFiles/stgcc.dir/petri/invariants.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/petri/invariants.cpp.o.d"
  "/root/repo/src/petri/marking.cpp" "src/CMakeFiles/stgcc.dir/petri/marking.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/petri/marking.cpp.o.d"
  "/root/repo/src/petri/net.cpp" "src/CMakeFiles/stgcc.dir/petri/net.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/petri/net.cpp.o.d"
  "/root/repo/src/petri/net_system.cpp" "src/CMakeFiles/stgcc.dir/petri/net_system.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/petri/net_system.cpp.o.d"
  "/root/repo/src/petri/pnml.cpp" "src/CMakeFiles/stgcc.dir/petri/pnml.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/petri/pnml.cpp.o.d"
  "/root/repo/src/petri/reachability.cpp" "src/CMakeFiles/stgcc.dir/petri/reachability.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/petri/reachability.cpp.o.d"
  "/root/repo/src/stg/astg.cpp" "src/CMakeFiles/stgcc.dir/stg/astg.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/stg/astg.cpp.o.d"
  "/root/repo/src/stg/benchmarks.cpp" "src/CMakeFiles/stgcc.dir/stg/benchmarks.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/stg/benchmarks.cpp.o.d"
  "/root/repo/src/stg/builder.cpp" "src/CMakeFiles/stgcc.dir/stg/builder.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/stg/builder.cpp.o.d"
  "/root/repo/src/stg/contraction.cpp" "src/CMakeFiles/stgcc.dir/stg/contraction.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/stg/contraction.cpp.o.d"
  "/root/repo/src/stg/insertion.cpp" "src/CMakeFiles/stgcc.dir/stg/insertion.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/stg/insertion.cpp.o.d"
  "/root/repo/src/stg/logic.cpp" "src/CMakeFiles/stgcc.dir/stg/logic.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/stg/logic.cpp.o.d"
  "/root/repo/src/stg/qm.cpp" "src/CMakeFiles/stgcc.dir/stg/qm.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/stg/qm.cpp.o.d"
  "/root/repo/src/stg/simulator.cpp" "src/CMakeFiles/stgcc.dir/stg/simulator.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/stg/simulator.cpp.o.d"
  "/root/repo/src/stg/state_checks.cpp" "src/CMakeFiles/stgcc.dir/stg/state_checks.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/stg/state_checks.cpp.o.d"
  "/root/repo/src/stg/state_graph.cpp" "src/CMakeFiles/stgcc.dir/stg/state_graph.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/stg/state_graph.cpp.o.d"
  "/root/repo/src/stg/stg.cpp" "src/CMakeFiles/stgcc.dir/stg/stg.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/stg/stg.cpp.o.d"
  "/root/repo/src/unfolding/configuration.cpp" "src/CMakeFiles/stgcc.dir/unfolding/configuration.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/unfolding/configuration.cpp.o.d"
  "/root/repo/src/unfolding/occurrence_net.cpp" "src/CMakeFiles/stgcc.dir/unfolding/occurrence_net.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/unfolding/occurrence_net.cpp.o.d"
  "/root/repo/src/unfolding/orders.cpp" "src/CMakeFiles/stgcc.dir/unfolding/orders.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/unfolding/orders.cpp.o.d"
  "/root/repo/src/unfolding/prefix_checks.cpp" "src/CMakeFiles/stgcc.dir/unfolding/prefix_checks.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/unfolding/prefix_checks.cpp.o.d"
  "/root/repo/src/unfolding/unfolder.cpp" "src/CMakeFiles/stgcc.dir/unfolding/unfolder.cpp.o" "gcc" "src/CMakeFiles/stgcc.dir/unfolding/unfolder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
