// Extension bench (not a paper table): automatic CSC resolution (the flow's
// step (b)) on the conflict-carrying rows of the benchmark suite.  For each
// model: the number of inserted internal signals, candidate insertions
// tried per accepted one is implicit in the time, and a re-verification
// that the repaired STG satisfies CSC while preserving safety and
// liveness.  Mirrors what the paper's authors later built as conflict-core
// based resolution tooling.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "core/checkers.hpp"
#include "core/resolver.hpp"
#include "stg/benchmarks.hpp"
#include "util/stopwatch.hpp"

using namespace stgcc;

namespace {

void table() {
    std::printf("Automatic CSC resolution on the conflict-carrying rows\n\n");
    std::printf("  %-16s | %3s | %8s | %9s | %s\n", "model", "Z", "signals",
                "time", "verdict after repair");
    benchutil::rule(72);
    std::vector<stg::bench::NamedBenchmark> models;
    models.push_back({"VME", stg::bench::vme_bus(), false});
    models.push_back({"LAZYRING", stg::bench::token_ring(2), false});
    models.push_back({"DUP-4PH-A", stg::bench::duplex_channel(1, false), false});
    models.push_back({"DUP-4PH-MTR-A",
                      stg::bench::duplex_channel(1, false, true), false});
    models.push_back({"ENVELOPE-1", stg::bench::phase_envelope(1), false});
    models.push_back({"ENVELOPE-2", stg::bench::phase_envelope(2), false});
    for (const auto& nb : models) {
        Stopwatch t;
        core::ResolutionResult result;
        std::string verdict;
        try {
            result = core::resolve_csc(nb.stg);
            if (result.resolved) {
                core::UnfoldingChecker checker(result.stg);
                verdict = checker.check_csc().holds ? "CSC holds"
                                                    : "INTERNAL ERROR";
            } else {
                verdict = "unresolved (budget)";
            }
        } catch (const ModelError& ex) {
            verdict = std::string("error: ") + ex.what();
        }
        std::printf("  %-16s | %3zu | %8zu | %9s | %s\n", nb.name.c_str(),
                    nb.stg.num_signals(), result.steps.size(),
                    benchutil::fmt_time(t.seconds()).c_str(), verdict.c_str());
        if (verdict == "INTERNAL ERROR") std::exit(1);
    }
    benchutil::rule(72);
    std::printf("\n");
}

void BM_ResolveVme(benchmark::State& state) {
    auto model = stg::bench::vme_bus();
    for (auto _ : state)
        benchmark::DoNotOptimize(core::resolve_csc(model).resolved);
}
BENCHMARK(BM_ResolveVme);

void BM_ResolveRing(benchmark::State& state) {
    auto model = stg::bench::token_ring(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::resolve_csc(model).resolved);
}
BENCHMARK(BM_ResolveRing);

}  // namespace

int main(int argc, char** argv) {
    table();
    std::fflush(stdout);  // keep table output ordered before gbench
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
