// Caching benchmark (docs/CACHING.md): quantifies all three tiers.
//
//  * tier 3 -- on-disk result cache: the Table 1 corpus is verified cold
//    (every model a miss: verify + store) and warm (every model a hit:
//    hash + load only).  The acceptance bar is a >= 1.3x warm speedup;
//    in practice hits skip verification entirely and the speedup is
//    orders of magnitude.
//  * tier 2 -- learned-clause store: total per-signal CSC fan-out search
//    nodes with and without the shared store on the conflict-free
//    instances (exhaustive searches, where first-difference cuts recorded
//    by one signal's instance prune every later sibling).
//  * tier 2 certificates: the USC->CSC handoff, where an exhaustive clean
//    USC pass answers the whole CSC phase without a single search node.
//
// Verdicts are asserted identical with caching on and off while measuring
// -- a benchmark run doubles as a differential check.  Writes
// BENCH_cache.json.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cache/result_cache.hpp"
#include "core/checkers.hpp"
#include "core/verifier.hpp"
#include "sched/parallel.hpp"
#include "stg/astg.hpp"
#include "stg/benchmarks.hpp"
#include "util/stopwatch.hpp"

using namespace stgcc;

namespace {

namespace fs = std::filesystem;

/// One stgbatch-shaped pass over the suite: hash each model's .g text,
/// consult the result cache, verify on miss + store, count hits.
double run_corpus(const std::vector<stg::bench::NamedBenchmark>& suite,
                  const std::vector<std::string>& texts,
                  const cache::ResultCache& rcache, std::size_t& hits,
                  std::string& verdicts) {
    const std::string options = "bench_cache/1";
    hits = 0;
    verdicts.clear();
    Stopwatch timer;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const std::uint64_t hash = cache::fnv1a64(texts[i]);
        if (const auto hit = rcache.load("bench", hash, options)) {
            ++hits;
            verdicts += hit->as_string();
            continue;
        }
        const auto report = core::verify_stg(suite[i].stg, {});
        const std::string verdict = std::string(report.usc.holds ? "U" : "u") +
                                    (report.csc.holds ? "C" : "c") +
                                    (report.normalcy.normal ? "N;" : "n;");
        rcache.store("bench", hash, options, obs::Json(verdict));
        verdicts += verdict;
    }
    return timer.seconds();
}

}  // namespace

int main() {
    benchutil::BenchReport report("cache");

    // --- tier 3: cold vs warm corpus through the on-disk result cache ----
    const auto suite = stg::bench::table1_suite();
    std::vector<std::string> texts;
    for (const auto& named : suite)
        texts.push_back(stg::write_astg_string(named.stg));

    const fs::path cache_dir =
        fs::temp_directory_path() /
        ("stgcc_bench_cache_" + std::to_string(::getpid()));
    fs::remove_all(cache_dir);
    const cache::ResultCache rcache(cache_dir.string());

    std::size_t cold_hits = 0, warm_hits = 0;
    std::string cold_verdicts, warm_verdicts;
    const double cold =
        run_corpus(suite, texts, rcache, cold_hits, cold_verdicts);
    const double warm =
        run_corpus(suite, texts, rcache, warm_hits, warm_verdicts);
    fs::remove_all(cache_dir);

    const double speedup = warm > 0 ? cold / warm : 0;
    std::printf("Result cache, Table 1 corpus (%zu models)\n", suite.size());
    benchutil::rule(72);
    std::printf("  cold run: %8.3f s  (%zu hits)\n", cold, cold_hits);
    std::printf("  warm run: %8.3f s  (%zu hits)\n", warm, warm_hits);
    std::printf("  speedup:  %8.1fx %s\n\n", speedup,
                cold_verdicts == warm_verdicts ? "" : "  VERDICT MISMATCH");
    report.add_row(obs::Json::object()
                       .set("benchmark", "result_cache_corpus")
                       .set("models", suite.size())
                       .set("cold_seconds", cold)
                       .set("warm_seconds", warm)
                       .set("warm_hits", warm_hits)
                       .set("speedup", speedup)
                       .set("verdicts_identical",
                            cold_verdicts == warm_verdicts));

    // --- tier 2: clause replay across the per-signal CSC fan-out ---------
    std::printf("Learned-clause store, per-signal CSC fan-out "
                "(exhaustive conflict-free searches)\n");
    benchutil::rule(72);
    std::printf("  %-24s %14s %14s %10s\n", "model", "nodes(off)",
                "nodes(on)", "reduction");
    std::vector<stg::bench::NamedBenchmark> cf_models;
    for (const auto& named : suite) {
        core::UnfoldingChecker probe(named.stg);
        core::SearchOptions off;
        off.use_learned_clauses = false;
        if (probe.check_usc(off).holds) cf_models.push_back(named);
    }
    for (const auto& named : cf_models) {
        sched::Executor serial(1);
        core::SearchOptions off;
        off.use_learned_clauses = false;
        core::UnfoldingChecker plain(named.stg);
        const auto r_off = plain.check_csc(off, serial);

        core::UnfoldingChecker cached(named.stg);
        const auto r_on = cached.check_csc({}, serial);

        const bool same = r_off.holds == r_on.holds;
        const double reduction =
            r_off.stats.search_nodes > 0
                ? 1.0 - static_cast<double>(r_on.stats.search_nodes) /
                            static_cast<double>(r_off.stats.search_nodes)
                : 0.0;
        std::printf("  %-24s %14zu %14zu %9.1f%%%s\n", named.name.c_str(),
                    r_off.stats.search_nodes, r_on.stats.search_nodes,
                    100.0 * reduction, same ? "" : "  VERDICT MISMATCH");
        report.add_row(obs::Json::object()
                           .set("benchmark", "clause_store_csc_fanout")
                           .set("model", named.name)
                           .set("nodes_off", r_off.stats.search_nodes)
                           .set("nodes_on", r_on.stats.search_nodes)
                           .set("node_reduction", reduction)
                           .set("verdicts_identical", same));
    }

    // --- tier 2 certificates: USC -> CSC handoff --------------------------
    std::printf("\nUSC->CSC certificate (clean USC pass answers CSC)\n");
    benchutil::rule(72);
    for (const auto& named : cf_models) {
        core::UnfoldingChecker checker(named.stg);
        const auto usc = checker.check_usc();
        const auto csc = checker.check_csc();
        std::printf("  %-24s USC %s -> CSC %s in %zu nodes\n",
                    named.name.c_str(), usc.holds ? "holds" : "violated",
                    csc.holds ? "holds" : "violated",
                    csc.stats.search_nodes);
        report.add_row(obs::Json::object()
                           .set("benchmark", "usc_csc_certificate")
                           .set("model", named.name)
                           .set("csc_nodes_after_usc", csc.stats.search_nodes));
    }

    std::printf("\n");
    report.write();
    return 0;
}
