// Data-layout benchmark (docs/MEMORY.md): quantifies the flat hot layer.
//
//  * frozen_layout -- per Table-1 model: freeze() time and the arena
//    footprint of the frozen prefix, reported as bytes per event.  The
//    nightly gate fails when bytes/event regresses more than 10% against
//    the committed BENCH_layout.json baseline -- the number the CSR/arena
//    refactor exists to keep small.
//  * workspace_pool -- a cold full verification (empty pool, every solver
//    allocates its workspace) against a warm re-run on the same thread
//    (workspaces come back off the per-worker free lists), together with
//    the `sched.workspace_reuse` counter delta.  Verdicts are asserted
//    identical while measuring.
//
// Writes BENCH_layout.json.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "obs/metrics.hpp"
#include "stg/benchmarks.hpp"
#include "unfolding/unfolder.hpp"
#include "util/stopwatch.hpp"

using namespace stgcc;

int main() {
    benchutil::BenchReport report("layout");

    // --- frozen prefix footprint ----------------------------------------
    const auto suite = stg::bench::table1_suite();
    std::printf("Frozen prefix layout (arena-backed CSR + bit matrices)\n");
    benchutil::rule(72);
    std::printf("  %-24s %8s %8s %12s %10s %10s\n", "model", "events",
                "conds", "arena bytes", "bytes/ev", "freeze");
    for (const auto& named : suite) {
        const unf::PrefixBuilder builder =
            unf::unfold_builder(named.stg.system());
        Stopwatch timer;
        const unf::Prefix frozen = builder.freeze();
        const double freeze_seconds = timer.seconds();
        const double bytes_per_event =
            static_cast<double>(frozen.arena_bytes()) /
            static_cast<double>(frozen.num_events());
        std::printf("  %-24s %8zu %8zu %12zu %10.1f %10s\n",
                    named.name.c_str(), frozen.num_events(),
                    frozen.num_conditions(), frozen.arena_bytes(),
                    bytes_per_event,
                    benchutil::fmt_time(freeze_seconds).c_str());
        report.add_row(obs::Json::object()
                           .set("benchmark", "frozen_layout")
                           .set("model", named.name)
                           .set("events", frozen.num_events())
                           .set("conditions", frozen.num_conditions())
                           .set("arena_bytes", frozen.arena_bytes())
                           .set("bytes_per_event", bytes_per_event)
                           .set("freeze_seconds", freeze_seconds));
    }
    std::printf("\n");

    // --- pooled solver workspaces: cold vs warm -------------------------
    std::printf("Pooled solver workspaces (cold pool vs warm re-run)\n");
    benchutil::rule(72);
    std::printf("  %-24s %10s %10s %8s %8s\n", "model", "cold", "warm",
                "speedup", "reuse");
    for (const auto& named : suite) {
        Stopwatch cold_timer;
        const auto cold_report = core::verify_stg(named.stg, {});
        const double cold_seconds = cold_timer.seconds();

        const std::uint64_t reuse_before =
            obs::counter("sched.workspace_reuse").value();
        Stopwatch warm_timer;
        const auto warm_report = core::verify_stg(named.stg, {});
        const double warm_seconds = warm_timer.seconds();
        const std::uint64_t reuse_delta =
            obs::counter("sched.workspace_reuse").value() - reuse_before;

        const bool same = cold_report.usc.holds == warm_report.usc.holds &&
                          cold_report.csc.holds == warm_report.csc.holds &&
                          cold_report.consistent == warm_report.consistent;
        const double speedup =
            warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0;
        std::printf("  %-24s %10s %10s %7.2fx %8llu%s\n", named.name.c_str(),
                    benchutil::fmt_time(cold_seconds).c_str(),
                    benchutil::fmt_time(warm_seconds).c_str(), speedup,
                    static_cast<unsigned long long>(reuse_delta),
                    same ? "" : "  VERDICT MISMATCH");
        report.add_row(obs::Json::object()
                           .set("benchmark", "workspace_pool")
                           .set("model", named.name)
                           .set("cold_seconds", cold_seconds)
                           .set("warm_seconds", warm_seconds)
                           .set("workspace_reuse", reuse_delta)
                           .set("verdicts_identical", same));
    }
    std::printf("\n");

    report.write();
    return 0;
}
