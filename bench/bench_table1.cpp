// Reproduces Table 1 of the paper: for each real-life STG, the sizes of the
// net (|S|, |T|, |Z|) and of its complete unfolding prefix (|B|, |E|, |Ec|),
// and the runtimes of the state-based checker ("Pfy" column: a Petrify-style
// exhaustive state-space method) versus the unfolding + integer-programming
// checker ("CLP" column: this library's CompatSolver).
//
// The paper's shape to reproduce: prefixes stay close to the STG size;
// conflict-carrying rows (top half) are solved very quickly by the IP
// method because it stops at the first conflict; conflict-free rows
// (bottom half, the *-CSC specifications) require exhausting the search
// space and are the harder case; memory stays O(|E|) against the state
// count of the baseline.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "core/checkers.hpp"
#include "stg/benchmarks.hpp"
#include "stg/state_checks.hpp"
#include "util/stopwatch.hpp"

using namespace stgcc;

namespace {

struct Row {
    std::string name;
    std::size_t S, T, Z, B, E, Ec, states;
    double state_based_s, ip_s;
    bool conflict;
    std::size_t nodes, leaves;
};

Row run_row(const stg::bench::NamedBenchmark& nb) {
    Row row;
    row.name = nb.name;
    row.S = nb.stg.net().num_places();
    row.T = nb.stg.net().num_transitions();
    row.Z = nb.stg.num_signals();

    // State-based (Petrify-style) pass: build the full state graph, then
    // check USC and CSC on it.
    Stopwatch sb;
    auto sg = benchutil::try_state_graph(nb.stg);
    if (sg) {
        (void)stg::check_usc_sg(*sg);
        (void)stg::check_csc_sg(*sg);
        row.states = sg->num_states();
    } else {
        row.states = 0;
    }
    row.state_based_s = sb.seconds();

    // Unfolding + IP pass: build the prefix, then run the CompatSolver.
    Stopwatch ip;
    core::UnfoldingChecker checker(nb.stg);
    auto usc = checker.check_usc();
    auto csc = checker.check_csc();
    row.ip_s = ip.seconds();
    row.B = checker.prefix().num_conditions();
    row.E = checker.prefix().num_events();
    row.Ec = checker.prefix().num_cutoffs();
    row.conflict = !csc.holds || !usc.holds;
    row.nodes = usc.stats.search_nodes + csc.stats.search_nodes;
    row.leaves = usc.stats.leaves + csc.stats.leaves;
    return row;
}

obs::Json row_json(const Row& r) {
    return obs::Json::object()
        .set("model", r.name)
        .set("net", obs::Json::object()
                        .set("places", r.S)
                        .set("transitions", r.T)
                        .set("signals", r.Z))
        .set("prefix", obs::Json::object()
                           .set("conditions", r.B)
                           .set("events", r.E)
                           .set("cutoffs", r.Ec))
        .set("states", r.states)
        .set("state_based_seconds", r.state_based_s)
        .set("unfolding_ip_seconds", r.ip_s)
        .set("search_nodes", r.nodes)
        .set("leaves", r.leaves)
        .set("verdict", r.conflict ? "conflict" : "csc-free");
}

void print_table() {
    std::printf("Table 1: coding-conflict detection on the benchmark suite\n");
    std::printf("('Pfy' = state-based baseline incl. state-graph construction; "
                "'CLP' = unfolding+IP incl. prefix construction)\n\n");
    std::printf("%-16s %4s %4s %3s | %5s %5s %4s | %8s | %9s %9s | %-9s %8s\n",
                "Problem", "S", "T", "Z", "B", "E", "Ec", "states", "Pfy",
                "CLP", "verdict", "nodes");
    benchutil::rule(108);
    benchutil::BenchReport json_report("table1");
    for (const auto& nb : stg::bench::table1_suite()) {
        Row r = run_row(nb);
        std::printf("%-16s %4zu %4zu %3zu | %5zu %5zu %4zu | %8zu | %9s %9s | "
                    "%-9s %8zu\n",
                    r.name.c_str(), r.S, r.T, r.Z, r.B, r.E, r.Ec, r.states,
                    benchutil::fmt_time(r.state_based_s).c_str(),
                    benchutil::fmt_time(r.ip_s).c_str(),
                    r.conflict ? "conflict" : "CSC-free", r.nodes);
        json_report.add_row(row_json(r));
    }
    benchutil::rule(108);
    std::printf("\n");
    json_report.write();
}

void BM_StateBased(benchmark::State& state, stg::Stg model) {
    for (auto _ : state) {
        auto sg = benchutil::try_state_graph(model);
        if (sg) {
            benchmark::DoNotOptimize(stg::check_usc_sg(*sg).holds);
            benchmark::DoNotOptimize(stg::check_csc_sg(*sg).holds);
        }
    }
}

void BM_UnfoldingIp(benchmark::State& state, stg::Stg model) {
    for (auto _ : state) {
        core::UnfoldingChecker checker(model);
        benchmark::DoNotOptimize(checker.check_usc().holds);
        benchmark::DoNotOptimize(checker.check_csc().holds);
    }
}

}  // namespace

int main(int argc, char** argv) {
    print_table();
    for (const auto& nb : stg::bench::table1_suite()) {
        benchmark::RegisterBenchmark(("state_based/" + nb.name).c_str(),
                                     BM_StateBased, nb.stg);
        benchmark::RegisterBenchmark(("unfolding_ip/" + nb.name).c_str(),
                                     BM_UnfoldingIp, nb.stg);
    }
    std::fflush(stdout);  // keep table output ordered before gbench
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
