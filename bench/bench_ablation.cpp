// Ablation benches for the two algorithmic claims of the paper:
//
//  1. Section 4: solving the constraint system with a structure-agnostic
//     solver ("standard solvers... need too much time even for STGs of
//     moderate size") versus the partial-order-aware CompatSolver.  The
//     generic branch-and-bound gets the identical constraint system
//     (marking-equation compatibility rows + code rows + cut-off fixings)
//     but no Theorem 1 closure propagation and no first-difference pair
//     enumeration.
//
//  2. Section 7: the dynamically-conflict-free optimisation (restricting
//     the search to set-ordered configuration pairs), on the marked-graph
//     benchmarks where it applies.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "core/checkers.hpp"
#include "ilp/encodings.hpp"
#include "stg/benchmarks.hpp"
#include "util/stopwatch.hpp"

using namespace stgcc;

namespace {

void ablation_generic_vs_compat() {
    std::printf("Ablation 1: partial-order-aware search vs generic 0-1 "
                "branch-and-bound\n(same constraint system; generic solver "
                "capped at 2M nodes)\n\n");
    std::printf("  %-14s | %9s %10s | %10s %12s\n", "model", "compat", "nodes",
                "generic", "nodes");
    benchutil::rule(72);

    std::vector<stg::bench::NamedBenchmark> models;
    models.push_back({"VME", stg::bench::vme_bus(), false});
    models.push_back({"SEQ-3", stg::bench::sequential_handshakes(3), false});
    models.push_back({"LAZYRING", stg::bench::token_ring(2), false});
    models.push_back({"DUP-4PH-A", stg::bench::duplex_channel(1, false), false});
    models.push_back({"JOHNSON-4", stg::bench::johnson_counter(4), true});
    models.push_back({"PAR-3", stg::bench::parallel_handshakes(3), true});
    models.push_back({"MULLER-3", stg::bench::muller_pipeline(3), true});
    models.push_back({"CF-SYM-A", stg::bench::counterflow(2, true), true});

    for (const auto& nb : models) {
        auto prefix = unf::unfold(nb.stg.system());

        Stopwatch ct;
        core::UnfoldingChecker checker(nb.stg, unf::unfold(nb.stg.system()));
        auto compat = checker.check_usc();
        const double compat_s = ct.seconds();

        std::string generic_time = "timeout", generic_nodes = "-";
        try {
            Stopwatch gt;
            ilp::GenericCheckOptions gopts;
            gopts.max_nodes = 2'000'000;
            auto generic = ilp::check_usc_generic(nb.stg, prefix, gopts);
            generic_time = benchutil::fmt_time(gt.seconds());
            generic_nodes = std::to_string(generic.stats.search_nodes);
            if (generic.holds != compat.holds) {
                std::fprintf(stderr, "DISAGREEMENT on %s\n", nb.name.c_str());
                std::exit(1);
            }
        } catch (const ModelError&) {
            // node cap hit: exactly the paper's point.
        }
        std::printf("  %-14s | %9s %10zu | %10s %12s\n", nb.name.c_str(),
                    benchutil::fmt_time(compat_s).c_str(),
                    compat.stats.search_nodes, generic_time.c_str(),
                    generic_nodes.c_str());
    }
    benchutil::rule(72);
    std::printf("\n");
}

void ablation_conflict_free() {
    std::printf("Ablation 2: section 7 conflict-free optimisation "
                "(search nodes to prove CSC-freeness)\n\n");
    std::printf("  %-14s | %12s | %12s | %s\n", "model", "opt on", "opt off",
                "speedup");
    benchutil::rule(64);
    std::vector<std::pair<std::string, stg::Stg>> models;
    models.emplace_back("MULLER-4", stg::bench::muller_pipeline(4));
    models.emplace_back("MULLER-6", stg::bench::muller_pipeline(6));
    models.emplace_back("PAR-4", stg::bench::parallel_handshakes(4));
    models.emplace_back("CF-SYM-B", stg::bench::counterflow(3, true));
    models.emplace_back("CF-SYM-C", stg::bench::counterflow(4, true));
    for (const auto& [name, model] : models) {
        core::UnfoldingChecker checker(model);
        core::SearchOptions on, off;
        off.use_conflict_free_optimisation = false;
        auto r_on = checker.check_usc(on);
        auto r_off = checker.check_usc(off);
        std::printf("  %-14s | %12zu | %12zu | %.2fx\n", name.c_str(),
                    r_on.stats.search_nodes, r_off.stats.search_nodes,
                    static_cast<double>(r_off.stats.search_nodes) /
                        static_cast<double>(r_on.stats.search_nodes ? r_on.stats.search_nodes : 1));
    }
    benchutil::rule(64);
    std::printf("\n");
}

void BM_CompatUsc(benchmark::State& state, stg::Stg model) {
    core::UnfoldingChecker checker(model);
    for (auto _ : state)
        benchmark::DoNotOptimize(checker.check_usc().holds);
}

void BM_GenericUsc(benchmark::State& state, stg::Stg model) {
    auto prefix = unf::unfold(model.system());
    for (auto _ : state)
        benchmark::DoNotOptimize(ilp::check_usc_generic(model, prefix).holds);
}

}  // namespace

int main(int argc, char** argv) {
    ablation_generic_vs_compat();
    ablation_conflict_free();
    benchmark::RegisterBenchmark("compat/vme", BM_CompatUsc,
                                 stg::bench::vme_bus());
    benchmark::RegisterBenchmark("generic/vme", BM_GenericUsc,
                                 stg::bench::vme_bus());
    benchmark::RegisterBenchmark("compat/muller4", BM_CompatUsc,
                                 stg::bench::muller_pipeline(4));
    std::fflush(stdout);  // keep table output ordered before gbench
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
