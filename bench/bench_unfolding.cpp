// Benchmarks the complete-prefix construction itself (the ERV algorithm
// with the total adequate order): prefix sizes against net sizes on the
// Table 1 suite, and construction throughput on the scalable families.
// The paper's observation to reproduce: "in all cases the size of the
// complete prefix was relatively small ... STGs usually contain a lot of
// concurrency but rather few conflicts, and thus the prefixes are not much
// bigger than the STGs themselves."
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "stg/benchmarks.hpp"
#include "unfolding/unfolder.hpp"
#include "util/stopwatch.hpp"

using namespace stgcc;

namespace {

void size_table() {
    std::printf("Prefix sizes on the Table 1 suite (|E| vs |T|: the paper's "
                "'prefixes are\nnot much bigger than the STGs themselves'):\n\n");
    std::printf("  %-16s | %4s %4s | %5s %5s %4s | %6s | %9s\n", "model", "S",
                "T", "B", "E", "Ec", "E/T", "time");
    benchutil::rule(72);
    benchutil::BenchReport json_report("unfolding");
    for (const auto& nb : stg::bench::table1_suite()) {
        Stopwatch t;
        auto prefix = unf::unfold(nb.stg.system());
        const double seconds = t.seconds();
        std::printf("  %-16s | %4zu %4zu | %5zu %5zu %4zu | %6.2f | %9s\n",
                    nb.name.c_str(), nb.stg.net().num_places(),
                    nb.stg.net().num_transitions(), prefix.num_conditions(),
                    prefix.num_events(), prefix.num_cutoffs(),
                    static_cast<double>(prefix.num_events()) /
                        static_cast<double>(nb.stg.net().num_transitions()),
                    benchutil::fmt_time(seconds).c_str());
        json_report.add_row(obs::Json::object()
                                .set("model", nb.name)
                                .set("conditions", prefix.num_conditions())
                                .set("events", prefix.num_events())
                                .set("cutoffs", prefix.num_cutoffs())
                                .set("seconds", seconds));
    }
    benchutil::rule(72);
    std::printf("\n");
    json_report.write();
}

/// The textbook McMillan-blowup gadget: a chain of n reconverging choice
/// diamonds p_i -> (u_i | v_i) -> p_{i+1}.  After each diamond the two
/// branches rejoin on the same marking with equal configuration sizes, so
/// McMillan's strict-size criterion cuts neither branch and the prefix
/// doubles per stage, while the ERV total order keeps one event per
/// marking.
petri::NetSystem choice_chain(int n) {
    petri::Net net;
    std::vector<petri::PlaceId> p;
    for (int i = 0; i <= n; ++i)
        p.push_back(net.add_place("p" + std::to_string(i)));
    for (int i = 0; i < n; ++i) {
        const auto u = net.add_transition("u" + std::to_string(i));
        const auto v = net.add_transition("v" + std::to_string(i));
        net.add_arc_pt(p[i], u);
        net.add_arc_pt(p[i], v);
        net.add_arc_tp(u, p[i + 1]);
        net.add_arc_tp(v, p[i + 1]);
    }
    petri::Marking m0(net.num_places());
    m0.set(p[0], 1);
    return petri::NetSystem(std::move(net), std::move(m0));
}

void order_comparison() {
    std::printf("Adequate-order ablation: ERV total order vs McMillan size "
                "order (prefix events):\n\n");
    std::printf("  %-16s | %8s | %10s | %s\n", "model", "ERV |E|",
                "McMillan", "ratio");
    benchutil::rule(56);
    std::vector<std::pair<std::string, stg::Stg>> models;
    models.emplace_back("VME", stg::bench::vme_bus());
    models.emplace_back("LAZYRING", stg::bench::token_ring(2));
    models.emplace_back("RING", stg::bench::token_ring(4));
    models.emplace_back("PAR-6", stg::bench::parallel_handshakes(6));
    models.emplace_back("MULLER-8", stg::bench::muller_pipeline(8));
    models.emplace_back("CF-SYM-C", stg::bench::counterflow(4, true));
    for (const auto& [name, model] : models) {
        unf::UnfoldOptions erv, mcm;
        mcm.order = unf::AdequateOrder::McMillanSize;
        const std::size_t e1 = unf::unfold(model.system(), erv).num_events();
        const std::size_t e2 = unf::unfold(model.system(), mcm).num_events();
        std::printf("  %-16s | %8zu | %10zu | %.2fx\n", name.c_str(), e1, e2,
                    static_cast<double>(e2) / static_cast<double>(e1));
    }
    for (int n : {4, 8, 12}) {
        auto sys = choice_chain(n);
        unf::UnfoldOptions erv, mcm;
        mcm.order = unf::AdequateOrder::McMillanSize;
        const std::size_t e1 = unf::unfold(sys, erv).num_events();
        const std::size_t e2 = unf::unfold(sys, mcm).num_events();
        std::printf("  CHOICE-CHAIN-%-3d | %8zu | %10zu | %.2fx\n", n, e1, e2,
                    static_cast<double>(e2) / static_cast<double>(e1));
    }
    benchutil::rule(56);
    std::printf("\n");
}

void BM_UnfoldTable1(benchmark::State& state, stg::Stg model) {
    for (auto _ : state)
        benchmark::DoNotOptimize(unf::unfold(model.system()).num_events());
}

void BM_UnfoldPar(benchmark::State& state) {
    auto model = stg::bench::parallel_handshakes(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(unf::unfold(model.system()).num_events());
}
BENCHMARK(BM_UnfoldPar)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_UnfoldMuller(benchmark::State& state) {
    auto model = stg::bench::muller_pipeline(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(unf::unfold(model.system()).num_events());
}
BENCHMARK(BM_UnfoldMuller)->Arg(4)->Arg(8)->Arg(16);

void BM_UnfoldRing(benchmark::State& state) {
    auto model = stg::bench::token_ring(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(unf::unfold(model.system()).num_events());
}
BENCHMARK(BM_UnfoldRing)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
    size_table();
    order_comparison();
    for (const auto& nb : stg::bench::table1_suite())
        benchmark::RegisterBenchmark(("unfold/" + nb.name).c_str(),
                                     BM_UnfoldTable1, nb.stg);
    std::fflush(stdout);  // keep table output ordered before gbench
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
