// Parallel-runtime benchmark: corpus wall-clock of the Table 1 suite at
// jobs = 1/2/4/8 (model-level + within-model parallelism on one shared
// pool, exactly the stgbatch configuration), and the per-signal CSC
// fan-out speedup on the largest conflict-free instances (the exhaustive
// searches that dominate checking time).  Writes BENCH_parallel.json.
//
// Verdicts are asserted identical across jobs values while measuring --
// a benchmark run doubles as a determinism check.  Speedups are whatever
// the hardware gives: on a single-core container they hover around 1.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/checkers.hpp"
#include "core/verifier.hpp"
#include "sched/parallel.hpp"
#include "stg/benchmarks.hpp"
#include "util/stopwatch.hpp"

using namespace stgcc;

namespace {

struct Verdicts {
    std::vector<int> rows;  // packed per-model: usc, csc, normalcy
    bool operator==(const Verdicts&) const = default;
};

/// Verify the whole suite through one shared executor (model-level
/// parallel_for; each verify's phases and per-signal instances reuse the
/// same pool).  Returns wall-clock seconds and the verdict vector.
double run_corpus(const std::vector<stg::bench::NamedBenchmark>& suite,
                  unsigned jobs, Verdicts& verdicts) {
    sched::Executor ex(jobs);
    std::vector<core::VerificationReport> reports(suite.size());
    Stopwatch timer;
    sched::parallel_for(ex, suite.size(), [&](std::size_t i) {
        reports[i] = core::verify_stg(suite[i].stg, {}, ex);
    });
    const double seconds = timer.seconds();
    verdicts.rows.clear();
    for (const auto& r : reports) {
        verdicts.rows.push_back(r.usc.holds);
        verdicts.rows.push_back(r.csc.holds);
        verdicts.rows.push_back(r.normalcy.normal);
    }
    return seconds;
}

}  // namespace

int main() {
    benchutil::BenchReport report("parallel");
    const auto suite = stg::bench::table1_suite();
    const unsigned hw = sched::Executor::hardware_jobs();

    std::printf("Parallel checking: Table 1 corpus, %zu models "
                "(hardware concurrency: %u)\n\n",
                suite.size(), hw);
    std::printf("%-8s %12s %10s\n", "jobs", "wall-clock", "speedup");
    benchutil::rule(34);

    Verdicts baseline;
    double serial_seconds = 0.0;
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        Verdicts verdicts;
        const double seconds = run_corpus(suite, jobs, verdicts);
        if (jobs == 1) {
            baseline = verdicts;
            serial_seconds = seconds;
        } else if (!(verdicts == baseline)) {
            std::fprintf(stderr,
                         "FATAL: verdicts at jobs=%u differ from serial\n",
                         jobs);
            return 1;
        }
        const double speedup = seconds > 0 ? serial_seconds / seconds : 1.0;
        std::printf("%-8u %12s %9.2fx\n", jobs,
                    benchutil::fmt_time(seconds).c_str(), speedup);
        report.add_row(obs::Json::object()
                           .set("section", "corpus")
                           .set("jobs", jobs)
                           .set("models", suite.size())
                           .set("seconds", seconds)
                           .set("speedup", speedup));
    }

    std::printf("\nPer-signal CSC fan-out on conflict-free instances "
                "(exhaustive searches):\n\n");
    std::printf("%-24s %8s %12s %12s %10s\n", "model", "signals", "jobs=1",
                "jobs=8", "speedup");
    benchutil::rule(72);
    for (const auto& entry : suite) {
        if (!entry.expect_conflict_free) continue;
        core::UnfoldingChecker checker(entry.stg);
        const std::size_t signals =
            entry.stg.circuit_driven_signals().size();

        sched::Executor serial(1);
        Stopwatch t1;
        const auto r1 = checker.check_csc({}, serial);
        const double s1 = t1.seconds();

        sched::Executor pool(8);
        Stopwatch t8;
        const auto r8 = checker.check_csc({}, pool);
        const double s8 = t8.seconds();

        if (r1.holds != r8.holds) {
            std::fprintf(stderr, "FATAL: CSC verdict differs on %s\n",
                         entry.name.c_str());
            return 1;
        }
        const double speedup = s8 > 0 ? s1 / s8 : 1.0;
        std::printf("%-24s %8zu %12s %12s %9.2fx\n", entry.name.c_str(),
                    signals, benchutil::fmt_time(s1).c_str(),
                    benchutil::fmt_time(s8).c_str(), speedup);
        report.add_row(obs::Json::object()
                           .set("section", "csc_fanout")
                           .set("model", entry.name)
                           .set("signals", signals)
                           .set("seconds_jobs1", s1)
                           .set("seconds_jobs8", s8)
                           .set("speedup", speedup));
    }

    std::printf("\n");
    report.write();
    return 0;
}
