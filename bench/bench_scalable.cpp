// Reproduces the paper's section 8 memory argument on scalable families:
// the reachability graph explodes exponentially while the complete prefix
// (and hence the O(|E|) working memory of the IP checker) grows linearly.
//
// Families:
//   PAR(n)    -- n parallel handshakes, 4^n states, conflict-free;
//   MULLER(n) -- n-stage Muller C-element pipeline, conflict-free;
//   SEQ(n)    -- n sequential handshakes, linear states, USC conflicts
//                (the fast first-conflict case).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "core/checkers.hpp"
#include "stg/benchmarks.hpp"
#include "util/stopwatch.hpp"

using namespace stgcc;

namespace {

void series(const char* name, stg::Stg (*make)(int), const std::vector<int>& ns,
            std::size_t state_cap) {
    std::printf("%s:\n", name);
    std::printf("  %4s | %9s | %5s %5s %4s | %9s %9s | %s\n", "n", "states",
                "B", "E", "Ec", "sg-time", "ip-time", "verdict");
    benchutil::rule(80);
    for (int n : ns) {
        auto model = make(n);
        Stopwatch sgt;
        auto sg = benchutil::try_state_graph(model, state_cap);
        const double sg_s = sgt.seconds();

        Stopwatch ipt;
        core::UnfoldingChecker checker(model);
        auto usc = checker.check_usc();
        auto csc = checker.check_csc();
        const double ip_s = ipt.seconds();

        char states[32];
        if (sg)
            std::snprintf(states, sizeof states, "%zu", sg->num_states());
        else
            std::snprintf(states, sizeof states, ">%zu", state_cap);
        std::printf("  %4d | %9s | %5zu %5zu %4zu | %9s %9s | %s\n", n, states,
                    checker.prefix().num_conditions(),
                    checker.prefix().num_events(),
                    checker.prefix().num_cutoffs(),
                    sg ? benchutil::fmt_time(sg_s).c_str() : "blow-up",
                    benchutil::fmt_time(ip_s).c_str(),
                    (usc.holds && csc.holds) ? "CSC-free" : "conflict");
    }
    benchutil::rule(80);
    std::printf("\n");
}

void BM_ParIp(benchmark::State& state) {
    auto model = stg::bench::parallel_handshakes(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        core::UnfoldingChecker checker(model);
        benchmark::DoNotOptimize(checker.check_usc().holds);
    }
}
BENCHMARK(BM_ParIp)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_MullerIp(benchmark::State& state) {
    auto model = stg::bench::muller_pipeline(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        core::UnfoldingChecker checker(model);
        benchmark::DoNotOptimize(checker.check_usc().holds);
    }
}
BENCHMARK(BM_MullerIp)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_SeqFirstConflict(benchmark::State& state) {
    auto model =
        stg::bench::sequential_handshakes(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        core::UnfoldingChecker checker(model);
        benchmark::DoNotOptimize(checker.check_usc().holds);
    }
}
BENCHMARK(BM_SeqFirstConflict)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
    std::printf("Prefix growth vs state-space explosion (paper section 8: the "
                "IP method\nuses O(|E|) memory beside the prefix; the baseline "
                "must materialise all states)\n\n");
    series("PAR(n) -- parallel handshakes", stg::bench::parallel_handshakes,
           {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 2'000'000);
    series("MULLER(n) -- C-element pipeline", stg::bench::muller_pipeline,
           {1, 2, 4, 6, 8, 10, 12, 14}, 2'000'000);
    series("SEQ(n) -- sequential handshakes (conflict present)",
           stg::bench::sequential_handshakes, {2, 4, 8, 16, 32}, 2'000'000);
    series("MUTEX(n) -- arbiter (conflict-free with choices: section 7 "
           "optimisation inapplicable)",
           stg::bench::mutex_arbiter, {1, 2, 3, 4, 5, 6}, 2'000'000);
    std::fflush(stdout);  // keep table output ordered before gbench
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
