// Reproduces Fig. 3 of the paper (section 6): the CSC-resolved VME bus
// controller is free from coding conflicts yet the inserted csc signal is
// neither p-normal nor n-normal -- its next-state function
// csc = dsr (csc + !ldtack) is non-monotonic.  Also times the normalcy
// check (the non-linear system (5)) across the benchmark suite.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "core/checkers.hpp"
#include "stg/benchmarks.hpp"
#include "util/stopwatch.hpp"

using namespace stgcc;

namespace {

void check(bool cond, const char* what) {
    if (!cond) {
        std::fprintf(stderr, "REPRODUCTION FAILURE: %s\n", what);
        std::exit(1);
    }
}

void reproduce_fig3() {
    auto model = stg::bench::vme_bus_csc_resolved();
    core::UnfoldingChecker checker(model);
    check(checker.check_usc().holds, "resolved VME must satisfy USC");
    check(checker.check_csc().holds, "resolved VME must satisfy CSC");
    auto n = checker.check_normalcy();
    check(!n.normal, "normalcy must be violated (paper Fig. 3)");

    std::printf("Fig. 3 -- normalcy of the CSC-resolved VME bus controller:\n");
    for (const auto& sn : n.per_signal) {
        const std::string name = model.signal_name(sn.signal);
        std::printf("  %-6s : %s\n", name.c_str(),
                    sn.p_normal && sn.n_normal ? "p-normal and n-normal"
                    : sn.p_normal              ? "p-normal"
                    : sn.n_normal              ? "n-normal"
                                               : "NOT normal");
        if (name == "csc") {
            check(!sn.p_normal && !sn.n_normal,
                  "csc must be neither p- nor n-normal");
        } else {
            check(sn.normal(), "real outputs must be normal");
        }
    }
    std::printf("Fig. 3 reproduced OK (csc = dsr (csc + !ldtack) is "
                "non-monotonic).\n\n");
}

void normalcy_table() {
    std::printf("Normalcy check across the suite (unfolding+IP, both "
                "orientations of (5)):\n\n");
    std::printf("  %-16s | %7s | %9s | %10s | %s\n", "model", "normal",
                "time", "nodes", "non-normal signals");
    benchutil::rule(76);
    std::vector<stg::bench::NamedBenchmark> suite;
    suite.push_back({"VME", stg::bench::vme_bus(), false});
    suite.push_back({"VME-CSC", stg::bench::vme_bus_csc_resolved(), true});
    suite.push_back({"JOHNSON-4", stg::bench::johnson_counter(4), true});
    suite.push_back({"MULLER-3", stg::bench::muller_pipeline(3), true});
    suite.push_back({"DUP-COD-1", stg::bench::duplex_channel(1, true), true});
    suite.push_back({"CF-SYM-A", stg::bench::counterflow(2, true), true});
    for (const auto& nb : suite) {
        core::UnfoldingChecker checker(nb.stg);
        Stopwatch t;
        auto n = checker.check_normalcy();
        std::string bad;
        for (const auto& sn : n.per_signal)
            if (!sn.normal()) bad += nb.stg.signal_name(sn.signal) + " ";
        std::printf("  %-16s | %7s | %9s | %10zu | %s\n", nb.name.c_str(),
                    n.normal ? "yes" : "NO",
                    benchutil::fmt_time(t.seconds()).c_str(),
                    n.stats.search_nodes, bad.c_str());
    }
    benchutil::rule(76);
    std::printf("\n");
}

void BM_NormalcyVmeCsc(benchmark::State& state) {
    auto model = stg::bench::vme_bus_csc_resolved();
    core::UnfoldingChecker checker(model);
    for (auto _ : state)
        benchmark::DoNotOptimize(checker.check_normalcy().normal);
}
BENCHMARK(BM_NormalcyVmeCsc);

void BM_NormalcyMuller(benchmark::State& state) {
    auto model = stg::bench::muller_pipeline(static_cast<int>(state.range(0)));
    core::UnfoldingChecker checker(model);
    for (auto _ : state)
        benchmark::DoNotOptimize(checker.check_normalcy().normal);
}
BENCHMARK(BM_NormalcyMuller)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
    reproduce_fig3();
    normalcy_table();
    std::fflush(stdout);  // keep table output ordered before gbench
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
