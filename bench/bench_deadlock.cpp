// Extension bench (not a paper table): the section 5 "extended reachability
// analysis" machinery applied to deadlock checking -- the problem whose
// unfolding+LP treatment ([8], Melzer/Roemer [14]) the paper credits as the
// motivation for its approach.  Compares the prefix-based deadlock check
// (one linear constraint per transition over Unf-compatible vectors)
// against explicit state-space search, on live models and on deadlocking
// variants.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "core/extended_checks.hpp"
#include "petri/reachability.hpp"
#include "stg/benchmarks.hpp"
#include "stg/builder.hpp"
#include "unfolding/unfolder.hpp"
#include "util/stopwatch.hpp"

using namespace stgcc;

namespace {

/// n parallel one-shot handshakes: the unique global deadlock sits at the
/// very "end" of a 4^n-ish state space, while the prefix stays linear.
stg::Stg par_with_deadlock(int n) {
    stg::StgBuilder b("par-dead-" + std::to_string(n));
    auto idx = [](const char* s, int i) { return std::string(s) + std::to_string(i); };
    for (int i = 1; i <= n; ++i) {
        b.input(idx("r", i)).output(idx("a", i));
        b.place(idx("go", i), 1);
        b.place(idx("stop", i));
        b.arc(idx("go", i), idx("r", i) + "+");
        b.arc(idx("r", i) + "+", idx("a", i) + "+");
        b.arc(idx("a", i) + "+", idx("r", i) + "-");
        b.arc(idx("r", i) + "-", idx("a", i) + "-");
        b.arc(idx("a", i) + "-", idx("stop", i));
    }
    return b.build();
}

void table() {
    std::printf("Deadlock checking: prefix + linear constraints (section 5) "
                "vs explicit states\n\n");
    std::printf("  %-14s | %9s | %5s | %9s %9s | %s\n", "model", "states", "E",
                "sg-time", "ip-time", "verdict");
    benchutil::rule(72);
    std::vector<std::pair<std::string, stg::Stg>> models;
    models.emplace_back("VME", stg::bench::vme_bus());
    models.emplace_back("RING", stg::bench::token_ring(4));
    models.emplace_back("MULLER-10", stg::bench::muller_pipeline(10));
    models.emplace_back("PAR-8", stg::bench::parallel_handshakes(8));
    models.emplace_back("PAR-DEAD-4", par_with_deadlock(4));
    models.emplace_back("PAR-DEAD-8", par_with_deadlock(8));
    for (const auto& [name, model] : models) {
        Stopwatch sgt;
        auto sg = benchutil::try_state_graph(model);
        const bool sg_dead = sg && !sg->graph().deadlocks().empty();
        const double sg_s = sgt.seconds();

        Stopwatch ipt;
        auto prefix = unf::unfold(model.system());
        core::CodingProblem problem(model, prefix);
        auto r = core::check_deadlock(problem);
        const double ip_s = ipt.seconds();
        if (sg && sg_dead != r.found) {
            std::fprintf(stderr, "DISAGREEMENT on %s\n", name.c_str());
            std::exit(1);
        }
        std::printf("  %-14s | %9zu | %5zu | %9s %9s | %s\n", name.c_str(),
                    sg ? sg->num_states() : 0, prefix.num_events(),
                    benchutil::fmt_time(sg_s).c_str(),
                    benchutil::fmt_time(ip_s).c_str(),
                    r.found ? "DEADLOCK" : "live");
    }
    benchutil::rule(72);
    std::printf("\n");
}

void BM_DeadlockIp(benchmark::State& state) {
    auto model = stg::bench::parallel_handshakes(static_cast<int>(state.range(0)));
    auto prefix = unf::unfold(model.system());
    core::CodingProblem problem(model, prefix);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::check_deadlock(problem).found);
}
BENCHMARK(BM_DeadlockIp)->Arg(4)->Arg(6)->Arg(8);

void BM_DeadlockSg(benchmark::State& state) {
    auto model = stg::bench::parallel_handshakes(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        petri::ReachabilityGraph rg(model.system());
        benchmark::DoNotOptimize(rg.deadlocks().empty());
    }
}
BENCHMARK(BM_DeadlockSg)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
    table();
    std::fflush(stdout);  // keep table output ordered before gbench
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
