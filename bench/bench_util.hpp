// stgcc benches -- shared helpers: fixed-width table printing and guarded
// state-graph construction (large instances report "blow-up" instead of
// hanging the harness).
#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "obs/report.hpp"
#include "petri/reachability.hpp"
#include "stg/state_graph.hpp"

namespace stgcc::benchutil {

inline void rule(int width = 100) {
    for (int i = 0; i < width; ++i) std::putchar('-');
    std::putchar('\n');
}

/// Build the state graph unless it exceeds `max_states`; nullopt = blow-up.
inline std::optional<stg::StateGraph> try_state_graph(
    const stg::Stg& model, std::size_t max_states = 5'000'000) {
    petri::ReachOptions opts;
    opts.max_states = max_states;
    try {
        return stg::StateGraph(model, opts);
    } catch (const ModelError&) {
        return std::nullopt;
    }
}

/// Accumulates one JSON row per benchmarked model and writes the whole set
/// as `BENCH_<name>.json` (into $STGCC_BENCH_JSON_DIR or the working
/// directory) so the perf trajectory is machine-trackable across PRs.
class BenchReport {
public:
    explicit BenchReport(std::string name) : name_(std::move(name)) {}

    /// Add a row; typically an object with at least {"model", "seconds"}.
    void add_row(obs::Json row) { rows_.push(std::move(row)); }

    /// Write the report; prints the path (or a warning) and returns it.
    std::string write() {
        const std::string path =
            obs::write_bench_report(name_, std::move(rows_));
        if (path.empty())
            std::fprintf(stderr, "warning: could not write BENCH_%s.json\n",
                         name_.c_str());
        else
            std::printf("machine-readable results: %s\n\n", path.c_str());
        rows_ = obs::Json::array();
        return path;
    }

private:
    std::string name_;
    obs::Json rows_ = obs::Json::array();
};

inline std::string fmt_time(double seconds) {
    char buf[32];
    if (seconds < 1e-3)
        std::snprintf(buf, sizeof buf, "%.0fus", seconds * 1e6);
    else if (seconds < 1.0)
        std::snprintf(buf, sizeof buf, "%.2fms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.2fs", seconds);
    return buf;
}

}  // namespace stgcc::benchutil
