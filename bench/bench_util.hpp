// stgcc benches -- shared helpers: fixed-width table printing and guarded
// state-graph construction (large instances report "blow-up" instead of
// hanging the harness).
#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "petri/reachability.hpp"
#include "stg/state_graph.hpp"

namespace stgcc::benchutil {

inline void rule(int width = 100) {
    for (int i = 0; i < width; ++i) std::putchar('-');
    std::putchar('\n');
}

/// Build the state graph unless it exceeds `max_states`; nullopt = blow-up.
inline std::optional<stg::StateGraph> try_state_graph(
    const stg::Stg& model, std::size_t max_states = 5'000'000) {
    petri::ReachOptions opts;
    opts.max_states = max_states;
    try {
        return stg::StateGraph(model, opts);
    } catch (const ModelError&) {
        return std::nullopt;
    }
}

inline std::string fmt_time(double seconds) {
    char buf[32];
    if (seconds < 1e-3)
        std::snprintf(buf, sizeof buf, "%.0fus", seconds * 1e6);
    else if (seconds < 1.0)
        std::snprintf(buf, sizeof buf, "%.2fms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.2fs", seconds);
    return buf;
}

}  // namespace stgcc::benchutil
