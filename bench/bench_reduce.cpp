// Reduction benchmark (docs/REDUCTIONS.md): quantifies what the pass
// manager buys at each layer.
//
//  * prefix shrink -- a dummy-laced handshake family is unfolded raw and
//    after the contract / series pipelines: events removed from the
//    complete prefix (the paper's |E|) and the end-to-end verify time.
//  * redundant-place shrink -- a family carrying duplicate and constant
//    places: conditions removed from the prefix with reduce=all vs off.
//  * semantic cache -- two textually different spellings of each model
//    (rotated construction order) hash differently pre-reduction but map
//    onto one reduced net; the second spelling must warm-hit the shared
//    stgcore tier.
//
// Verdicts are asserted identical across every variant while measuring --
// a benchmark run doubles as a differential check.  Writes
// BENCH_reduce.json.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cache/result_cache.hpp"
#include "core/verifier.hpp"
#include "stg/astg.hpp"
#include "stg/builder.hpp"
#include "stg/reduce/reduce.hpp"
#include "unfolding/unfolder.hpp"
#include "util/stopwatch.hpp"

using namespace stgcc;

namespace {

namespace fs = std::filesystem;

/// n independent four-phase handshakes, each with a dummy spliced between
/// the request and the acknowledge (series-agglomerable: |*e| = |e*| = 1).
/// `reversed` rotates the arc insertion order -- same net, same signal
/// order, different source text (and thus a different content hash).
stg::Stg dummy_pipeline(int n, bool reversed = false) {
    stg::StgBuilder b("dummy_pipe" + std::to_string(n));
    for (int i = 0; i < n; ++i) {
        const std::string s = std::to_string(i);
        b.input("r" + s).output("a" + s).dummy("e" + s);
    }
    auto add_stage = [&](int i) {
        const std::string s = std::to_string(i);
        b.chain({"r" + s + "+", "e" + s, "a" + s + "+", "r" + s + "-",
                 "a" + s + "-", "r" + s + "+"});
        b.token_between("a" + s + "-", "r" + s + "+");
    };
    for (int i = 0; i < n; ++i) add_stage(reversed ? n - 1 - i : i);
    return b.build();
}

/// n handshakes where each stage carries a duplicate of its marked return
/// place plus a constant self-loop place -- 2n removable places, zero
/// removable transitions.
stg::Stg redundant_handshakes(int n) {
    stg::StgBuilder b("redundant" + std::to_string(n));
    for (int i = 0; i < n; ++i) {
        const std::string s = std::to_string(i);
        b.input("r" + s).output("a" + s);
    }
    for (int i = 0; i < n; ++i) {
        const std::string s = std::to_string(i);
        b.chain({"r" + s + "+", "a" + s + "+", "r" + s + "-", "a" + s + "-",
                 "r" + s + "+"});
        b.token_between("a" + s + "-", "r" + s + "+");
        b.place("dup" + s, 1);
        b.arc("a" + s + "-", "dup" + s).arc("dup" + s, "r" + s + "+");
        b.place("cst" + s, 1);
        b.arc("cst" + s, "r" + s + "+").arc("r" + s + "+", "cst" + s);
    }
    return b.build();
}

std::string verdict_string(const core::VerificationReport& r) {
    return std::string(r.usc.holds ? "U" : "u") + (r.csc.holds ? "C" : "c");
}

}  // namespace

int main() {
    benchutil::BenchReport report("reduce");

    // --- prefix shrink on the dummy-laced family -------------------------
    std::printf("Reduction pass manager, dummy-laced handshake family\n");
    benchutil::rule(78);
    std::printf("  %-14s %10s %14s %12s %10s %10s\n", "model", "|E| raw",
                "|E| contract", "|E| series", "removed", "verify");
    for (const int n : {2, 4, 6}) {
        const auto model = dummy_pipeline(n);
        const auto raw_prefix = unf::unfold(model.system());

        core::VerifyOptions contract;
        contract.reduce = stg::reduce::Options::parse("contract");
        Stopwatch timer;
        const auto r_contract = core::verify_stg(model, contract);
        const double seconds = timer.seconds();

        core::VerifyOptions series;
        series.reduce = stg::reduce::Options::parse("series");
        const auto r_series = core::verify_stg(model, series);

        const std::size_t removed =
            raw_prefix.num_events() - r_contract.prefix.events;
        const bool agree =
            verdict_string(r_contract) == verdict_string(r_series);
        std::printf("  %-14s %10zu %14zu %12zu %10zu %9s%s\n",
                    ("dummy_pipe" + std::to_string(n)).c_str(),
                    raw_prefix.num_events(), r_contract.prefix.events,
                    r_series.prefix.events, removed,
                    benchutil::fmt_time(seconds).c_str(),
                    agree ? "" : "  VERDICT MISMATCH");
        report.add_row(obs::Json::object()
                           .set("benchmark", "prefix_shrink_dummy")
                           .set("model", "dummy_pipe" + std::to_string(n))
                           .set("events_raw", raw_prefix.num_events())
                           .set("events_contract", r_contract.prefix.events)
                           .set("events_series", r_series.prefix.events)
                           .set("events_removed", removed)
                           .set("transitions_removed",
                                r_contract.reduction.transitions_removed())
                           .set("verify_seconds", seconds)
                           .set("verdicts_identical", agree));
    }

    // --- condition shrink on the redundant-place family ------------------
    std::printf("\nRedundant-place family, reduce=all vs off\n");
    benchutil::rule(78);
    std::printf("  %-14s %12s %12s %12s %10s %10s\n", "model", "|B| off",
                "|B| all", "places -", "t(off)", "t(all)");
    for (const int n : {2, 4, 6}) {
        const auto model = redundant_handshakes(n);
        Stopwatch t_off;
        const auto r_off = core::verify_stg(model, {});
        const double off_s = t_off.seconds();

        core::VerifyOptions all;
        all.reduce = stg::reduce::Options::all();
        Stopwatch t_all;
        const auto r_all = core::verify_stg(model, all);
        const double all_s = t_all.seconds();

        const bool agree = verdict_string(r_off) == verdict_string(r_all);
        std::printf("  %-14s %12zu %12zu %12zu %10s %9s%s\n",
                    ("redundant" + std::to_string(n)).c_str(),
                    r_off.prefix.conditions, r_all.prefix.conditions,
                    r_all.reduction.places_removed(),
                    benchutil::fmt_time(off_s).c_str(),
                    benchutil::fmt_time(all_s).c_str(),
                    agree ? "" : "  VERDICT MISMATCH");
        report.add_row(obs::Json::object()
                           .set("benchmark", "condition_shrink_places")
                           .set("model", "redundant" + std::to_string(n))
                           .set("conditions_off", r_off.prefix.conditions)
                           .set("conditions_all", r_all.prefix.conditions)
                           .set("places_removed",
                                r_all.reduction.places_removed())
                           .set("verify_seconds_off", off_s)
                           .set("verify_seconds_all", all_s)
                           .set("verdicts_identical", agree));
    }

    // --- semantic cache tier: warm hits on reduced keys ------------------
    std::printf("\nSemantic cache: rotated spellings, reduced-net keys\n");
    benchutil::rule(78);
    const fs::path cache_dir =
        fs::temp_directory_path() /
        ("stgcc_bench_reduce_" + std::to_string(::getpid()));
    fs::remove_all(cache_dir);
    {
        const cache::ResultCache rcache(cache_dir.string());
        std::size_t hits = 0, pairs = 0;
        for (const int n : {2, 4, 6}) {
            const auto a = dummy_pipeline(n, false);
            const auto b = dummy_pipeline(n, true);
            const std::uint64_t ha =
                cache::fnv1a64(stg::write_astg_string(a));
            const std::uint64_t hb =
                cache::fnv1a64(stg::write_astg_string(b));
            core::VerifyOptions opts;
            opts.reduce = stg::reduce::Options::parse("contract");
            bool hit = false;
            const auto ra = core::verify_stg_cached(a, opts, rcache, &hit);
            Stopwatch warm;
            const auto rb = core::verify_stg_cached(b, opts, rcache, &hit);
            const double warm_s = warm.seconds();
            ++pairs;
            if (hit) ++hits;
            const bool agree = verdict_string(ra) == verdict_string(rb);
            std::printf("  dummy_pipe%-4d content hashes %s  warm %-6s %8s%s\n",
                        n, ha == hb ? "EQUAL (bad)" : "differ",
                        hit ? "HIT" : "miss",
                        benchutil::fmt_time(warm_s).c_str(),
                        agree ? "" : "  VERDICT MISMATCH");
            report.add_row(obs::Json::object()
                               .set("benchmark", "semantic_warm_hit")
                               .set("model", "dummy_pipe" + std::to_string(n))
                               .set("content_hashes_differ", ha != hb)
                               .set("warm_hit", hit)
                               .set("warm_seconds", warm_s)
                               .set("verdicts_identical", agree));
        }
        std::printf("  warm-hit rate: %zu/%zu\n", hits, pairs);
        report.add_row(obs::Json::object()
                           .set("benchmark", "semantic_warm_hit_rate")
                           .set("hits", hits)
                           .set("pairs", pairs));
    }
    fs::remove_all(cache_dir);

    std::printf("\n");
    report.write();
    return 0;
}
