// Reproduces Fig. 1 and Fig. 2 of the paper on the VME bus controller:
//   * Fig. 1(b): the CSC conflict between two states coded 10110 with
//     Out = {d} vs Out = {lds};
//   * Fig. 2: the unfolding prefix (12 events, 1 cut-off) and the two
//     conflicting configurations / Parikh vectors.
// The assertions below fail loudly if the reproduction drifts.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "core/checkers.hpp"
#include "core/verifier.hpp"
#include "stg/benchmarks.hpp"
#include "unfolding/configuration.hpp"

using namespace stgcc;

namespace {

void check(bool cond, const char* what) {
    if (!cond) {
        std::fprintf(stderr, "REPRODUCTION FAILURE: %s\n", what);
        std::exit(1);
    }
}

void reproduce_figures() {
    auto model = stg::bench::vme_bus();
    core::UnfoldingChecker checker(model);
    const auto& prefix = checker.prefix();

    std::printf("Fig. 2 -- unfolding prefix of the VME bus controller:\n");
    std::printf("  |B| = %zu conditions, |E| = %zu events, |Ec| = %zu cut-off\n",
                prefix.num_conditions(), prefix.num_events(),
                prefix.num_cutoffs());
    check(prefix.num_events() == 12 && prefix.num_cutoffs() == 1,
          "prefix must have 12 events with 1 cut-off (paper Fig. 2)");

    auto csc = checker.check_csc();
    check(!csc.holds, "VME must have a CSC conflict (paper Fig. 1b)");
    const auto& w = *csc.witness;

    // The paper prints the code in the order dsr, dtack, lds, ldtack, d.
    auto paper_code = [&](const stg::Code& code) {
        std::string s;
        for (const char* name : {"dsr", "dtack", "lds", "ldtack", "d"})
            s += code.test(model.find_signal(name)) ? '1' : '0';
        return s;
    };
    std::printf("\nFig. 1(b) -- CSC conflict:\n");
    std::printf("  shared code (paper order dsr,dtack,lds,ldtack,d): %s\n",
                paper_code(w.code).c_str());
    std::printf("  C'  (x'):  %s\n", model.sequence_text(w.trace1).c_str());
    std::printf("  C'' (x''): %s\n", model.sequence_text(w.trace2).c_str());
    check(paper_code(w.code) == "10110", "conflict code must be 10110");
    check(w.out1.count() == 1 && w.out2.count() == 1,
          "both Out sets are singletons ({d} vs {lds})");
    std::printf("  Out(M')  = {%s}, Out(M'') = {%s}\n",
                model.signal_name(static_cast<stg::SignalId>(w.out1.find_first()))
                    .c_str(),
                model.signal_name(static_cast<stg::SignalId>(w.out2.find_first()))
                    .c_str());
    std::printf("\nFig. 1/2 reproduced OK.\n\n");
}

void BM_VmeUnfold(benchmark::State& state) {
    auto model = stg::bench::vme_bus();
    for (auto _ : state)
        benchmark::DoNotOptimize(unf::unfold(model.system()).num_events());
}
BENCHMARK(BM_VmeUnfold);

void BM_VmeCscCheck(benchmark::State& state) {
    auto model = stg::bench::vme_bus();
    core::UnfoldingChecker checker(model);
    for (auto _ : state)
        benchmark::DoNotOptimize(checker.check_csc().holds);
}
BENCHMARK(BM_VmeCscCheck);

void BM_VmeFullVerify(benchmark::State& state) {
    auto model = stg::bench::vme_bus();
    for (auto _ : state)
        benchmark::DoNotOptimize(core::verify_stg(model).csc.holds);
}
BENCHMARK(BM_VmeFullVerify);

}  // namespace

int main(int argc, char** argv) {
    reproduce_figures();
    std::fflush(stdout);  // keep table output ordered before gbench
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
