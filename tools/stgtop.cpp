// stgtop: live terminal dashboard for a running stgd (docs/SERVICE.md).
//
// Polls the daemon's `stats` op at a fixed interval and renders the live
// picture the one-shot snapshot cannot give: inflight/queued requests,
// rolling 1s/10s/60s request and check rates, latency quantiles over the
// last minute, cache-tier hit ratios, worker busy fraction (from the
// sched.worker_busy_ns delta between polls) and deadline/error counts.
//
// `--once` prints a single snapshot and exits -- the CI smoke and scripts
// use it; interactive runs repaint the terminal every `--interval` ms
// until interrupted.
//
// Exit codes: 0 = clean exit, 2 = usage or connection error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "obs/eventlog.hpp"
#include "obs/json.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"

namespace {

using namespace stgcc;

void print_usage(std::ostream& out) {
    out << "usage: stgtop --connect ENDPOINT [options]\n"
           "\n"
           "options:\n"
           "  --connect EP     stgd endpoint (unix:/path or host:port)\n"
           "  --interval MS    poll period in milliseconds (default: 1000)\n"
           "  --once           print one snapshot and exit (no screen "
           "clearing)\n"
           "\n"
           "exit codes: 0 = clean exit, 2 = usage or connection error\n";
}

double num(const obs::Json* parent, const char* key) {
    if (!parent) return 0.0;
    const obs::Json* v = parent->find(key);
    return v ? v->as_double() : 0.0;
}

std::string fmt_rate(double per_s) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", per_s);
    return buf;
}

std::string fmt_ns(double ns) {
    char buf[32];
    if (ns >= 1e9)
        std::snprintf(buf, sizeof buf, "%.2f s", ns / 1e9);
    else if (ns >= 1e6)
        std::snprintf(buf, sizeof buf, "%.1f ms", ns / 1e6);
    else if (ns >= 1e3)
        std::snprintf(buf, sizeof buf, "%.1f us", ns / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.0f ns", ns);
    return buf;
}

std::string fmt_pct(double num_v, double den) {
    if (den <= 0.0) return "-";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f%%", 100.0 * num_v / den);
    return buf;
}

/// Carried between polls for delta-based figures.
struct PrevSample {
    bool valid = false;
    double uptime_s = 0.0;
    double busy_ns = 0.0;
};

void render(const obs::Json& stats, const std::string& endpoint,
            PrevSample& prev) {
    const obs::Json* server = stats.find("server");
    const obs::Json* requests = stats.find("requests");
    const obs::Json* cache = stats.find("cache");
    const obs::Json* rolling = stats.find("rolling");
    const obs::Json* roll_req = rolling ? rolling->find("requests") : nullptr;
    const obs::Json* roll_chk = rolling ? rolling->find("checks") : nullptr;
    const obs::Json* metrics = stats.find("metrics");
    const obs::Json* counters = metrics ? metrics->find("counters") : nullptr;

    const double uptime = num(server, "uptime_seconds");
    const bool draining =
        server && server->find("draining") && server->find("draining")->as_bool();
    std::printf("stgd %s — up %.1f s, jobs %.0f, max_inflight %.0f%s\n",
                endpoint.c_str(), uptime, num(server, "jobs"),
                num(server, "max_inflight"), draining ? "  [DRAINING]" : "");
    std::printf(
        "requests  %6.0f inflight  %6.0f queued  %8.0f served  "
        "%6.0f errors  %6.0f deadline_exceeded\n",
        num(requests, "inflight"), num(requests, "queued"),
        num(requests, "served"), num(requests, "errors"),
        num(requests, "deadline_exceeded"));
    std::printf(
        "rates     req/s  1s %-7s 10s %-7s 60s %-7s   checks/s  1s %-7s "
        "10s %-7s 60s %-7s\n",
        fmt_rate(num(roll_req, "rate_1s")).c_str(),
        fmt_rate(num(roll_req, "rate_10s")).c_str(),
        fmt_rate(num(roll_req, "rate_60s")).c_str(),
        fmt_rate(num(roll_chk, "rate_1s")).c_str(),
        fmt_rate(num(roll_chk, "rate_10s")).c_str(),
        fmt_rate(num(roll_chk, "rate_60s")).c_str());
    std::printf("latency   checks (60s)  p50 %-10s p90 %-10s p99 %-10s\n",
                fmt_ns(num(roll_chk, "p50")).c_str(),
                fmt_ns(num(roll_chk, "p90")).c_str(),
                fmt_ns(num(roll_chk, "p99")).c_str());
    const double mem = num(cache, "memory_hits");
    const double disk = num(cache, "disk_hits");
    const double miss = num(cache, "misses");
    const double lookups = mem + disk + miss;
    std::printf(
        "cache     memory %.0f (%s)  disk %.0f (%s)  miss %.0f (%s)  "
        "— %.0f bundles, %.0f results held\n",
        mem, fmt_pct(mem, lookups).c_str(), disk, fmt_pct(disk, lookups).c_str(),
        miss, fmt_pct(miss, lookups).c_str(), num(cache, "bundles"),
        num(cache, "memory_results"));
    // Worker busy fraction: sched.worker_busy_ns accumulated across the
    // pool, differenced between polls against wall time x workers.
    const double busy_ns = num(counters, "sched.worker_busy_ns");
    const double workers = num(server, "jobs");
    std::string busy = "-";
    if (prev.valid && workers > 0 && uptime > prev.uptime_s) {
        const double wall_ns = (uptime - prev.uptime_s) * 1e9 * workers;
        busy = fmt_pct(busy_ns - prev.busy_ns, wall_ns);
    }
    std::printf("workers   %.0f workers, busy %s (since last poll)\n", workers,
                busy.c_str());
    std::printf("conns     %.0f open, %.0f accepted\n",
                num(requests, "connections_active"),
                num(requests, "connections_accepted"));
    prev.valid = true;
    prev.uptime_s = uptime;
    prev.busy_ns = busy_ns;
    std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
    const char* connect = nullptr;
    std::uint64_t interval_ms = 1000;
    bool once = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--connect") && i + 1 < argc)
            connect = argv[++i];
        else if (!std::strcmp(argv[i], "--interval") && i + 1 < argc) {
            char* end = nullptr;
            interval_ms = std::strtoull(argv[++i], &end, 10);
            if (!end || *end != '\0' || interval_ms == 0) {
                std::cerr << "bad --interval value: " << argv[i] << "\n";
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--once"))
            once = true;
        else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
            print_usage(std::cout);
            return 0;
        } else {
            std::cerr << "unknown option: " << argv[i] << "\n";
            print_usage(std::cerr);
            return 2;
        }
    }
    if (!connect) {
        std::cerr << "error: --connect is required\n";
        print_usage(std::cerr);
        return 2;
    }

    svc::Client client;
    std::string error;
    if (!client.connect(connect, error)) {
        std::cerr << "error: " << error << "\n";
        return 2;
    }
    const std::string trace = obs::generate_trace_id();
    PrevSample prev;
    std::int64_t id = 0;
    while (true) {
        const obs::Json request = obs::Json::object()
                                      .set("op", "stats")
                                      .set("id", ++id)
                                      .set("trace", trace);
        auto response = client.call(request, error);
        if (!response) {
            // The daemon may have drained between polls; try one reconnect
            // before giving up (interactive sessions outlive restarts).
            client.close();
            if (once || !client.connect(connect, error)) {
                std::cerr << "error: " << error << "\n";
                return 2;
            }
            response = client.call(request, error);
            if (!response) {
                std::cerr << "error: " << error << "\n";
                return 2;
            }
        }
        if (!svc::response_ok(*response)) {
            std::cerr << "error: " << svc::response_error(*response) << "\n";
            return 2;
        }
        if (!once) std::printf("\x1b[2J\x1b[H");  // clear + home
        render(*response, connect, prev);
        if (once) return 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
}
