// stgbatch: corpus driver -- verify a whole directory (or manifest) of
// ASTG (.g) models concurrently on the src/sched/ work-stealing pool.
//
// The manifest is either a directory (every *.g file, sorted by name) or a
// text file with one model path per line (relative paths resolve against
// the manifest's directory; '#' starts a comment).  Models are verified
// model-parallel: each model runs a full serial verify_stg pipeline, and
// the pool spreads models over workers.  One result line is streamed per
// model as it finishes; the aggregate JSON report (--json) lists models in
// manifest order, so verdicts are byte-stable at any --jobs value.
//
// Exit codes: 0 = every model satisfies all checked properties,
//             1 = at least one conflict / violation found,
//             2 = usage or IO error (including any model failing to load).
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "core/verifier.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sched/parallel.hpp"
#include "stg/astg.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace stgcc;
namespace fs = std::filesystem;

void print_usage(std::ostream& out) {
    out << "usage: stgbatch <dir | manifest.txt> [options]\n"
           "\n"
           "manifest: a directory (all *.g files, sorted) or a text file\n"
           "with one .g path per line ('#' comments; relative paths are\n"
           "resolved against the manifest's directory)\n"
           "\n"
           "options:\n"
           "  --jobs N       worker threads (default: hardware concurrency;\n"
           "                 1 = serial; verdicts are identical at any N)\n"
           "  --no-normalcy  skip the normalcy check\n"
           "  --contract     securely contract dummy transitions first\n"
           "  --deadlock     also run the deadlock check\n"
           "  --quiet        suppress per-model result lines\n"
           "  --json FILE    write the aggregate machine-readable report\n"
           "  --trace FILE   write a Chrome trace-event JSON\n"
           "\n"
           "exit codes: 0 = all properties hold on every model,\n"
           "            1 = conflict found, 2 = usage/IO error\n";
}

/// Everything recorded about one model, merged in manifest order.
struct ModelResult {
    std::string name;          ///< model name from the .g (or file stem)
    std::string file;          ///< path as listed in the manifest
    bool loaded = false;
    std::string error;         ///< load/verify failure, when !loaded
    core::VerificationReport report;
    double seconds = 0.0;
    [[nodiscard]] bool all_hold() const {
        return loaded && report.consistent && report.usc.holds &&
               report.csc.holds &&
               (!report.normalcy_checked || report.normalcy.normal) &&
               (!report.deadlock_checked || report.deadlock_free);
    }
};

std::vector<std::string> collect_manifest(const std::string& arg,
                                          std::string& error) {
    std::vector<std::string> files;
    fs::path p(arg);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
        for (const auto& entry : fs::directory_iterator(p, ec)) {
            if (entry.is_regular_file() && entry.path().extension() == ".g")
                files.push_back(entry.path().string());
        }
        std::sort(files.begin(), files.end());
        if (files.empty()) error = "no .g files in directory: " + arg;
        return files;
    }
    std::ifstream in(p);
    if (!in) {
        error = "cannot open manifest: " + arg;
        return files;
    }
    const fs::path base = p.has_parent_path() ? p.parent_path() : fs::path(".");
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos) continue;
        const auto last = line.find_last_not_of(" \t\r");
        fs::path entry(line.substr(first, last - first + 1));
        if (entry.is_relative()) entry = base / entry;
        files.push_back(entry.string());
    }
    if (files.empty()) error = "empty manifest: " + arg;
    return files;
}

std::string verdict_line(const ModelResult& r) {
    if (!r.loaded) return "ERROR (" + r.error + ")";
    if (!r.report.consistent)
        return "inconsistent (" + r.report.inconsistency_reason + ")";
    std::string out;
    out += r.report.usc.holds ? "USC:ok" : "USC:VIOLATED";
    out += r.report.csc.holds ? " CSC:ok" : " CSC:VIOLATED";
    if (r.report.normalcy_checked)
        out += r.report.normalcy.normal ? " normalcy:ok" : " normalcy:VIOLATED";
    if (r.report.deadlock_checked)
        out += r.report.deadlock_free ? " deadlock:none" : " deadlock:REACHABLE";
    return out;
}

obs::Json model_json(const ModelResult& r) {
    obs::Json row = obs::Json::object();
    row.set("file", r.file);
    if (!r.loaded) {
        row.set("status", "error").set("error", r.error);
        return row;
    }
    row.set("name", r.name);
    row.set("status", r.all_hold() ? "ok" : "violated");
    row.set("seconds", r.seconds);
    obs::Json verdicts = obs::Json::object();
    verdicts.set("consistent", r.report.consistent);
    if (r.report.consistent) {
        verdicts.set("usc", r.report.usc.holds);
        verdicts.set("csc", r.report.csc.holds);
        if (r.report.normalcy_checked)
            verdicts.set("normalcy", r.report.normalcy.normal);
        if (r.report.deadlock_checked)
            verdicts.set("deadlock_free", r.report.deadlock_free);
    }
    row.set("verdicts", std::move(verdicts));
    row.set("prefix", obs::Json::object()
                          .set("conditions", r.report.prefix.conditions)
                          .set("events", r.report.prefix.events)
                          .set("cutoffs", r.report.prefix.cutoffs));
    return row;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        print_usage(std::cerr);
        return 2;
    }
    const char* manifest = nullptr;
    const char* json_path = nullptr;
    const char* trace_path = nullptr;
    bool normalcy = true;
    bool contract = false;
    bool deadlock = false;
    bool quiet = false;
    unsigned jobs = 0;  // 0 = hardware concurrency
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--no-normalcy"))
            normalcy = false;
        else if (!std::strcmp(argv[i], "--contract"))
            contract = true;
        else if (!std::strcmp(argv[i], "--deadlock"))
            deadlock = true;
        else if (!std::strcmp(argv[i], "--quiet"))
            quiet = true;
        else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
            print_usage(std::cout);
            return 0;
        } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            char* end = nullptr;
            const unsigned long v = std::strtoul(argv[++i], &end, 10);
            if (!end || *end != '\0') {
                std::cerr << "bad --jobs value: " << argv[i] << "\n";
                return 2;
            }
            jobs = static_cast<unsigned>(v);
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
            trace_path = argv[++i];
        else if (argv[i][0] != '-')
            manifest = argv[i];
        else {
            std::cerr << "unknown option: " << argv[i] << "\n";
            print_usage(std::cerr);
            return 2;
        }
    }
    if (!manifest) {
        std::cerr << "no manifest\n";
        return 2;
    }
    if (json_path || trace_path) obs::set_enabled(true);

    std::string manifest_error;
    const std::vector<std::string> files =
        collect_manifest(manifest, manifest_error);
    if (files.empty()) {
        std::cerr << "error: " << manifest_error << "\n";
        return 2;
    }

    core::VerifyOptions vopts;
    vopts.check_normalcy = normalcy;
    vopts.contract_dummies = contract;
    vopts.check_deadlock = deadlock;

    sched::Executor ex(jobs);
    if (!quiet)
        std::cout << "stgbatch: " << files.size() << " models, jobs="
                  << ex.jobs() << "\n";

    Stopwatch total_timer;
    std::mutex out_mu;
    std::size_t done = 0;
    std::vector<ModelResult> results(files.size());
    // Results land in `results` by manifest index (deterministic); only the
    // streamed progress lines appear in completion order.  Model tasks and
    // each model's inner instances (per-signal CSC, normalcy orientations)
    // share the one pool: small models fill workers the big models' fanout
    // leaves idle, and the corpus isn't serialized on its largest model.
    sched::parallel_for(ex, files.size(), [&](std::size_t i) {
        ModelResult& r = results[i];
        r.file = files[i];
        Stopwatch timer;
        try {
            stg::Stg model = stg::load_astg_file(files[i]);
            r.name = model.name();
            r.report = core::verify_stg(model, vopts, ex);
            r.loaded = true;
        } catch (const std::exception& e) {
            r.error = e.what();
        }
        r.seconds = timer.seconds();
        std::lock_guard<std::mutex> lock(out_mu);
        ++done;
        if (!quiet) {
            std::cout << "[" << done << "/" << files.size() << "] "
                      << fs::path(files[i]).filename().string() << "  "
                      << verdict_line(r) << "  (" << r.seconds << " s)\n";
        }
    });
    const double total_seconds = total_timer.seconds();

    std::size_t ok = 0, violated = 0, errors = 0;
    for (const ModelResult& r : results) {
        if (!r.loaded)
            ++errors;
        else if (r.all_hold())
            ++ok;
        else
            ++violated;
    }
    std::cout << "stgbatch: " << ok << " ok, " << violated << " violated, "
              << errors << " errors in " << total_seconds << " s (jobs="
              << ex.jobs() << ")\n";

    if (json_path) {
        obs::Json rows = obs::Json::array();
        for (const ModelResult& r : results) rows.push(model_json(r));
        obs::Json body = obs::Json::object();
        body.set("manifest", manifest);
        body.set("jobs", ex.jobs());
        body.set("models", std::move(rows));
        body.set("summary", obs::Json::object()
                                .set("total", results.size())
                                .set("ok", ok)
                                .set("violated", violated)
                                .set("errors", errors)
                                .set("seconds", total_seconds));
        body.set("metrics", obs::Registry::instance().to_json());
        if (!obs::save_json(json_path,
                            obs::make_report("stgbatch", std::move(body)))) {
            std::cerr << "error: cannot write " << json_path << "\n";
            return 2;
        }
        if (!quiet) std::cout << "report written to " << json_path << "\n";
    }
    if (trace_path) {
        if (!obs::write_chrome_trace(trace_path)) {
            std::cerr << "error: cannot write " << trace_path << "\n";
            return 2;
        }
        if (!quiet) std::cout << "trace written to " << trace_path << "\n";
    }

    if (errors > 0) return 2;
    return violated > 0 ? 1 : 0;
}
