// stgbatch: corpus driver -- verify a whole directory (or manifest) of
// ASTG (.g) models concurrently on the src/sched/ work-stealing pool.
//
// The manifest is either a directory (every *.g file, sorted by name) or a
// text file with one model path per line (relative paths resolve against
// the manifest's directory; '#' starts a comment).  Models are verified
// model-parallel: each model runs a full serial verify_stg pipeline, and
// the pool spreads models over workers.  One result line is streamed per
// model as it finishes; the aggregate JSON report (--json) lists models in
// manifest order, so verdicts are byte-stable at any --jobs value.
//
// Caching (docs/CACHING.md): with a cache directory configured
// (--cache-dir or $STGCC_CACHE_DIR), each model's verdict line and report
// row are stored keyed by the model file's content hash and the checker
// options; a warm corpus run replays hits without re-verifying.
// --no-cache disables the result cache and learned-clause sharing.
//
// Exit codes: 0 = every model satisfies all checked properties,
//             1 = at least one conflict / violation found,
//             2 = usage or IO error (including any model failing to load).
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "cache/clause_store.hpp"
#include "cache/result_cache.hpp"
#include "core/verifier.hpp"
#include "obs/eventlog.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sched/parallel.hpp"
#include "sched/thread_pool.hpp"
#include "stg/astg.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace stgcc;
namespace fs = std::filesystem;

void print_usage(std::ostream& out) {
    out << "usage: stgbatch <dir | manifest.txt> [options]\n"
           "\n"
           "manifest: a directory (all *.g files, sorted) or a text file\n"
           "with one .g path per line ('#' comments; relative paths are\n"
           "resolved against the manifest's directory)\n"
           "\n"
           "options:\n"
           "  --jobs N         worker threads (default: hardware concurrency;\n"
           "                   1 = serial; verdicts are identical at any N)\n"
           "  --no-normalcy    skip the normalcy check\n"
           "  --reduce[=LIST]  verdict-preserving net reductions first\n"
           "                   (docs/REDUCTIONS.md): all passes or a comma\n"
           "                   list; witnesses stay on the original nets\n"
           "  --no-reduce      disable reductions (the default)\n"
           "  --contract       legacy alias for --reduce=contract\n"
           "  --deadlock       also run the deadlock check\n"
           "  --quiet          suppress per-model result lines\n"
           "  --json FILE      write the aggregate machine-readable report\n"
           "  --trace FILE     write a Chrome trace-event JSON\n"
           "  --cache-dir DIR  on-disk result cache (default: $STGCC_CACHE_DIR;\n"
           "                   unset = no result cache)\n"
           "  --no-cache       disable result cache and learned-clause sharing\n"
           "  --connect EP     verify through a running stgd at EP\n"
           "                   (unix:/path or host:port); verdicts and the\n"
           "                   aggregate report match a local run\n"
           "  --deadline-ms D  per-request deadline (--connect only)\n"
           "\n"
           "exit codes: 0 = all properties hold on every model,\n"
           "            1 = conflict found, 2 = usage/IO error\n";
}

/// True when every checked property holds on a verified model.
bool report_all_hold(const core::VerificationReport& r) {
    return r.consistent && r.usc.holds && r.csc.holds &&
           (!r.normalcy_checked || r.normalcy.normal) &&
           (!r.deadlock_checked || r.deadlock_free);
}

std::string report_verdict_line(const core::VerificationReport& r) {
    if (!r.consistent)
        return "inconsistent (" + r.inconsistency_reason + ")";
    std::string out;
    out += r.usc.holds ? "USC:ok" : "USC:VIOLATED";
    out += r.csc.holds ? " CSC:ok" : " CSC:VIOLATED";
    if (r.normalcy_checked)
        out += r.normalcy.normal ? " normalcy:ok" : " normalcy:VIOLATED";
    if (r.deadlock_checked)
        out += r.deadlock_free ? " deadlock:none" : " deadlock:REACHABLE";
    return out;
}

/// Aggregate-report row for a verified model, without the volatile
/// "seconds" field -- exactly what the result cache stores; the caller
/// appends "seconds" (kept last in the row for that reason).
obs::Json report_row(const std::string& file, const std::string& name,
                     const core::VerificationReport& r) {
    obs::Json row = obs::Json::object();
    row.set("file", file);
    row.set("name", name);
    row.set("status", report_all_hold(r) ? "ok" : "violated");
    obs::Json verdicts = obs::Json::object();
    verdicts.set("consistent", r.consistent);
    if (r.consistent) {
        verdicts.set("usc", r.usc.holds);
        verdicts.set("csc", r.csc.holds);
        if (r.normalcy_checked) verdicts.set("normalcy", r.normalcy.normal);
        if (r.deadlock_checked)
            verdicts.set("deadlock_free", r.deadlock_free);
    }
    row.set("verdicts", std::move(verdicts));
    row.set("prefix", obs::Json::object()
                          .set("conditions", r.prefix.conditions)
                          .set("events", r.prefix.events)
                          .set("cutoffs", r.prefix.cutoffs));
    if (r.reduction.rounds > 0)
        row.set("reduction", core::reduction_json(r.reduction));
    return row;
}

/// Everything recorded about one model, merged in manifest order.  Holds
/// only rendered data (verdict line, report row) -- full reports and their
/// prefix artifacts are dropped as soon as each model finishes, and cache
/// hits never materialise them at all.
struct ModelResult {
    std::string file;       ///< path as listed in the manifest
    bool loaded = false;
    bool all_hold = false;
    bool from_cache = false;
    std::string error;      ///< load/verify failure, when !loaded
    std::string verdict;    ///< streamed verdict line
    obs::Json row;          ///< aggregate-report row (seconds appended later)
    double seconds = 0.0;
    /// Scheduler attribution for this model's task group: the model task
    /// itself plus every nested task it fanned out (per-signal CSC,
    /// normalcy orientations).  Volatile -- appended to the row under
    /// "stats", never cached.
    std::uint64_t tasks = 0;
    std::uint64_t queue_delay_ns = 0;
    cache::ClauseStore::Efficacy cuts;
};

/// Reduction totals across the corpus, summed from the (cached or fresh)
/// report rows so warm and cold runs aggregate identically.
obs::Json reduction_summary(const std::vector<ModelResult>& results) {
    std::size_t places = 0, transitions = 0, remaining = 0, reduced = 0;
    for (const ModelResult& r : results) {
        const obs::Json* red = r.row.find("reduction");
        if (!red) continue;
        ++reduced;
        if (const obs::Json* v = red->find("places_removed"))
            places += static_cast<std::size_t>(v->as_int());
        if (const obs::Json* v = red->find("transitions_removed"))
            transitions += static_cast<std::size_t>(v->as_int());
        if (const obs::Json* v = red->find("remaining_dummies"))
            remaining += v->size();
    }
    return obs::Json::object()
        .set("models_reduced", reduced)
        .set("places_removed", places)
        .set("transitions_removed", transitions)
        .set("remaining_dummies", remaining);
}

std::vector<std::string> collect_manifest(const std::string& arg,
                                          std::string& error) {
    std::vector<std::string> files;
    fs::path p(arg);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
        for (const auto& entry : fs::directory_iterator(p, ec)) {
            if (entry.is_regular_file() && entry.path().extension() == ".g")
                files.push_back(entry.path().string());
        }
        std::sort(files.begin(), files.end());
        if (files.empty()) error = "no .g files in directory: " + arg;
        return files;
    }
    std::ifstream in(p);
    if (!in) {
        error = "cannot open manifest: " + arg;
        return files;
    }
    const fs::path base = p.has_parent_path() ? p.parent_path() : fs::path(".");
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos) continue;
        const auto last = line.find_last_not_of(" \t\r");
        fs::path entry(line.substr(first, last - first + 1));
        if (entry.is_relative()) entry = base / entry;
        files.push_back(entry.string());
    }
    if (files.empty()) error = "empty manifest: " + arg;
    return files;
}

/// --connect mode: ship the whole corpus to a running stgd as one batch
/// request and merge the streamed rows back into manifest order.  Progress
/// lines appear in completion order (flushed per row); the aggregate
/// report is canonically identical to a local run (docs/SERVICE.md).
int run_connected(const char* connect, const char* manifest,
                  const std::vector<std::string>& files, const char* json_path,
                  const svc::CheckOptions& copts, bool quiet,
                  std::uint64_t deadline_ms) {
    svc::Client client;
    std::string error;
    if (!client.connect(connect, error)) {
        std::cerr << "error: " << error << "\n";
        return 2;
    }

    if (!quiet)
        std::cout << "stgbatch: " << files.size() << " models, connect "
                  << connect << "\n";
    std::vector<ModelResult> results(files.size());
    std::size_t done = 0;
    const auto progress = [&](std::size_t i) {
        ++done;
        if (quiet) return;
        std::cout << "[" << done << "/" << files.size() << "] "
                  << fs::path(files[i]).filename().string() << "  "
                  << results[i].verdict << "  (" << results[i].seconds
                  << " s)\n";
        std::cout.flush();  // stream rows promptly (watchable progress)
    };

    Stopwatch total_timer;
    obs::Json models = obs::Json::array();
    std::size_t sent = 0;
    for (std::size_t i = 0; i < files.size(); ++i) {
        ModelResult& r = results[i];
        r.file = files[i];
        const auto bytes = cache::read_file_bytes(files[i]);
        if (!bytes) {
            // Same shape a local load failure produces; never sent.
            r.error = "cannot open " + files[i];
            r.verdict = "ERROR (" + r.error + ")";
            r.row = obs::Json::object()
                        .set("file", files[i])
                        .set("status", "error")
                        .set("error", r.error);
            progress(i);
            continue;
        }
        models.push(obs::Json::object()
                        .set("index", i)
                        .set("file", files[i])
                        .set("model", *bytes));
        ++sent;
    }

    if (sent > 0) {
        // One trace id covers the whole batch: every server-side row event
        // carries it alongside its model index (docs/OBSERVABILITY.md).
        const std::string trace = obs::generate_trace_id();
        obs::Json request = obs::Json::object()
                                .set("op", "batch")
                                .set("id", 1)
                                .set("trace", trace)
                                .set("models", std::move(models))
                                .set("options", copts.to_json());
        if (deadline_ms > 0) request.set("deadline_ms", deadline_ms);
        if (!client.send(request, error)) {
            std::cerr << "error: " << error << "\n";
            return 2;
        }
        while (true) {
            const auto frame = client.recv(error);
            if (!frame) {
                std::cerr << "error: " << error << "\n";
                return 2;
            }
            if (!svc::response_ok(*frame)) {
                std::cerr << "error: " << svc::response_error(*frame) << "\n";
                return 2;
            }
            const obs::Json* event = frame->find("event");
            if (event && event->as_string() == "done") break;
            const obs::Json* index = frame->find("index");
            if (!event || event->as_string() != "row" || !index) {
                std::cerr << "error: malformed frame from " << connect << "\n";
                return 2;
            }
            const auto i = static_cast<std::size_t>(index->as_int());
            if (i >= results.size()) continue;
            ModelResult& r = results[i];
            if (const obs::Json* err = frame->find("error")) {
                const obs::Json* msg = err->find("message");
                r.error = msg ? msg->as_string() : "server error";
                r.verdict = "ERROR (" + r.error + ")";
                r.row = obs::Json::object()
                            .set("file", files[i])
                            .set("status", "error")
                            .set("error", r.error);
            } else {
                const obs::Json* verdict = frame->find("verdict");
                const obs::Json* all_hold = frame->find("all_hold");
                const obs::Json* row = frame->find("row");
                if (!verdict || !all_hold || !row) {
                    std::cerr << "error: malformed row from " << connect
                              << "\n";
                    return 2;
                }
                r.loaded = true;
                r.verdict = verdict->as_string();
                r.all_hold = all_hold->as_bool();
                const obs::Json* cached = frame->find("cached");
                r.from_cache =
                    cached && cached->kind() == obs::Json::Kind::String;
                if (const obs::Json* s = frame->find("seconds"))
                    r.seconds = s->as_double();
                // The server's row is content-addressed (no path); restore
                // the manifest path as the leading member, like a local run.
                obs::Json merged = obs::Json::object().set("file", files[i]);
                for (std::size_t m = 0; m < row->size(); ++m) {
                    const auto& [key, value] = row->member(m);
                    merged.set(key, value);
                }
                r.row = std::move(merged);
            }
            progress(i);
        }
    }
    const double total_seconds = total_timer.seconds();

    std::size_t ok = 0, violated = 0, errors = 0;
    for (const ModelResult& r : results) {
        if (!r.loaded)
            ++errors;
        else if (r.all_hold)
            ++ok;
        else
            ++violated;
    }
    std::cout << "stgbatch: " << ok << " ok, " << violated << " violated, "
              << errors << " errors in " << total_seconds << " s (connect "
              << connect << ")\n";

    if (json_path) {
        obs::Json rows = obs::Json::array();
        for (const ModelResult& r : results) {
            obs::Json row = r.row;
            if (r.loaded) row.set("seconds", r.seconds);
            rows.push(std::move(row));
        }
        obs::Json body = obs::Json::object();
        body.set("manifest", manifest);
        body.set("jobs", 0);  // remote pool; volatile key, stripped anyway
        body.set("models", std::move(rows));
        obs::Json summary = obs::Json::object()
                                .set("total", results.size())
                                .set("ok", ok)
                                .set("violated", violated)
                                .set("errors", errors)
                                .set("seconds", total_seconds);
        obs::Json red = reduction_summary(results);
        if (red.find("models_reduced")->as_int() > 0)
            summary.set("reduction", std::move(red));
        body.set("summary", std::move(summary));
        if (!obs::save_json(json_path,
                            obs::make_report("stgbatch", std::move(body)))) {
            std::cerr << "error: cannot write " << json_path << "\n";
            return 2;
        }
        if (!quiet) std::cout << "report written to " << json_path << "\n";
    }
    if (errors > 0) return 2;
    return violated > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        print_usage(std::cerr);
        return 2;
    }
    const char* manifest = nullptr;
    const char* json_path = nullptr;
    const char* trace_path = nullptr;
    bool normalcy = true;
    std::string reduce_spec = "none";
    bool deadlock = false;
    bool quiet = false;
    bool use_cache = true;
    const char* cache_dir_flag = nullptr;
    const char* connect = nullptr;
    std::uint64_t deadline_ms = 0;
    unsigned jobs = 0;  // 0 = hardware concurrency
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--no-normalcy"))
            normalcy = false;
        else if (!std::strcmp(argv[i], "--contract"))
            reduce_spec = "contract";  // legacy alias for --reduce=contract
        else if (!std::strcmp(argv[i], "--reduce"))
            reduce_spec = "all";
        else if (!std::strncmp(argv[i], "--reduce=", 9))
            reduce_spec = argv[i] + 9;
        else if (!std::strcmp(argv[i], "--no-reduce"))
            reduce_spec = "none";
        else if (!std::strcmp(argv[i], "--deadlock"))
            deadlock = true;
        else if (!std::strcmp(argv[i], "--quiet"))
            quiet = true;
        else if (!std::strcmp(argv[i], "--no-cache"))
            use_cache = false;
        else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
            print_usage(std::cout);
            return 0;
        } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            char* end = nullptr;
            const unsigned long v = std::strtoul(argv[++i], &end, 10);
            if (!end || *end != '\0') {
                std::cerr << "bad --jobs value: " << argv[i] << "\n";
                return 2;
            }
            jobs = static_cast<unsigned>(v);
        } else if (!std::strcmp(argv[i], "--cache-dir") && i + 1 < argc)
            cache_dir_flag = argv[++i];
        else if (!std::strcmp(argv[i], "--connect") && i + 1 < argc)
            connect = argv[++i];
        else if (!std::strcmp(argv[i], "--deadline-ms") && i + 1 < argc) {
            char* end = nullptr;
            deadline_ms = std::strtoull(argv[++i], &end, 10);
            if (!end || *end != '\0') {
                std::cerr << "bad --deadline-ms value: " << argv[i] << "\n";
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
            trace_path = argv[++i];
        else if (argv[i][0] != '-')
            manifest = argv[i];
        else {
            std::cerr << "unknown option: " << argv[i] << "\n";
            print_usage(std::cerr);
            return 2;
        }
    }
    if (!manifest) {
        std::cerr << "no manifest\n";
        return 2;
    }
    if (json_path || trace_path) obs::set_enabled(true);

    std::string manifest_error;
    const std::vector<std::string> files =
        collect_manifest(manifest, manifest_error);
    if (files.empty()) {
        std::cerr << "error: " << manifest_error << "\n";
        return 2;
    }
    // One options signature shared with stgcheck and stgd: a verdict cached
    // by any of them is warm for the others (docs/CACHING.md).
    svc::CheckOptions copts;
    copts.normalcy = normalcy;
    copts.reduce = reduce_spec;
    copts.deadlock = deadlock;
    copts.use_cache = use_cache;
    core::VerifyOptions vopts;
    vopts.check_normalcy = normalcy;
    try {
        vopts.reduce = stg::reduce::Options::parse(reduce_spec);
    } catch (const std::exception& ex) {
        std::cerr << "bad --reduce value: " << ex.what() << "\n";
        return 2;
    }
    vopts.check_deadlock = deadlock;
    vopts.search.use_learned_clauses = use_cache;

    if (connect) {
        if (trace_path) {
            std::cerr << "error: --trace needs local spans and is not "
                         "supported with --connect\n";
            return 2;
        }
        return run_connected(connect, manifest, files, json_path, copts,
                             quiet, deadline_ms);
    }

    // Tier-3 result cache; keyed by content hash + checker options (not
    // --jobs: verdicts are jobs-independent by the determinism contract).
    std::string cache_root;
    if (use_cache) {
        if (cache_dir_flag)
            cache_root = cache_dir_flag;
        else if (const char* env = std::getenv("STGCC_CACHE_DIR"))
            cache_root = env;
    }
    const cache::ResultCache rcache(cache_root);
    const std::string options_sig = copts.signature();

    sched::Executor ex(jobs);
    if (!quiet)
        std::cout << "stgbatch: " << files.size() << " models, jobs="
                  << ex.jobs() << "\n";

    // One attribution group per model: the model task claims its manifest
    // index, nested submissions inherit it, and the per-model queue-delay
    // column reads the tallies back after the model's fan-out drained.
    if (ex.pool()) ex.pool()->configure_groups(files.size());

    Stopwatch total_timer;
    std::mutex out_mu;
    std::size_t done = 0;
    std::vector<ModelResult> results(files.size());
    // Results land in `results` by manifest index (deterministic); only the
    // streamed progress lines appear in completion order.  Model tasks and
    // each model's inner instances (per-signal CSC, normalcy orientations)
    // share the one pool: small models fill workers the big models' fanout
    // leaves idle, and the corpus isn't serialized on its largest model.
    sched::parallel_for(ex, files.size(), [&](std::size_t i) {
        sched::set_current_group(static_cast<std::uint32_t>(i));
        ModelResult& r = results[i];
        r.file = files[i];
        Stopwatch timer;
        std::uint64_t content_hash = 0;
        bool hashed = false;
        if (rcache.enabled()) {
            if (const auto bytes = cache::read_file_bytes(files[i])) {
                content_hash = cache::fnv1a64(*bytes);
                hashed = true;
                if (const auto hit =
                        rcache.load("stgbatch", content_hash, options_sig)) {
                    const obs::Json* verdict = hit->find("verdict");
                    const obs::Json* all_hold = hit->find("all_hold");
                    const obs::Json* row = hit->find("row");
                    if (verdict && all_hold && row) {
                        r.loaded = true;
                        r.from_cache = true;
                        r.verdict = verdict->as_string();
                        r.all_hold = all_hold->as_bool();
                        r.row = *row;
                    }
                }
            }
        }
        if (!r.from_cache) {
            try {
                stg::Stg model = stg::load_astg_file(files[i]);
                const std::string name = model.name();
                auto report = core::verify_stg(model, vopts, ex);
                r.loaded = true;
                r.cuts = report.cuts;
                r.all_hold = report_all_hold(report);
                r.verdict = report_verdict_line(report);
                r.row = report_row(files[i], name, report);
                if (hashed)
                    rcache.store("stgbatch", content_hash, options_sig,
                                 obs::Json::object()
                                     .set("verdict", r.verdict)
                                     .set("all_hold", r.all_hold)
                                     .set("row", r.row));
            } catch (const std::exception& e) {
                // Load/verify failures are never cached: the message may
                // depend on environment state (permissions, limits).
                r.error = e.what();
                r.verdict = "ERROR (" + r.error + ")";
                r.row = obs::Json::object()
                            .set("file", files[i])
                            .set("status", "error")
                            .set("error", r.error);
            }
        }
        r.seconds = timer.seconds();
        // Queue-delay attribution: nested tasks are quiescent here (the
        // model's verify drained its groups), but this task's own tallies
        // land in the group only after this lambda returns -- so add its
        // queue delay explicitly.
        r.tasks = 1;
        r.queue_delay_ns = sched::current_task_queue_delay_ns();
        if (ex.pool()) {
            const auto gs = ex.pool()->group_stats(i);
            r.tasks += gs.tasks;
            r.queue_delay_ns += gs.queue_delay_ns;
        }
        const double qd_ms = static_cast<double>(r.queue_delay_ns) /
                             static_cast<double>(r.tasks) / 1e6;
        std::lock_guard<std::mutex> lock(out_mu);
        ++done;
        if (!quiet) {
            std::cout << "[" << done << "/" << files.size() << "] "
                      << fs::path(files[i]).filename().string() << "  "
                      << r.verdict << "  (" << r.seconds << " s, qd "
                      << qd_ms << " ms)\n";
            // Flush per row: a redirected stgbatch (CI logs, a pipe into
            // `tee`) shows each verdict as it lands, not on buffer fill.
            std::cout.flush();
        }
    });
    const double total_seconds = total_timer.seconds();

    std::size_t ok = 0, violated = 0, errors = 0;
    for (const ModelResult& r : results) {
        if (!r.loaded)
            ++errors;
        else if (r.all_hold)
            ++ok;
        else
            ++violated;
    }
    std::cout << "stgbatch: " << ok << " ok, " << violated << " violated, "
              << errors << " errors in " << total_seconds << " s (jobs="
              << ex.jobs() << ")\n";

    if (json_path) {
        obs::Json rows = obs::Json::array();
        for (const ModelResult& r : results) {
            obs::Json row = r.row;
            if (r.loaded) {
                row.set("seconds", r.seconds);
                row.set("stats",
                        obs::Json::object()
                            .set("tasks", r.tasks)
                            .set("queue_delay_ns", r.queue_delay_ns)
                            .set("cuts",
                                 obs::Json::object()
                                     .set("recorded", r.cuts.recorded)
                                     .set("replayed", r.cuts.replayed)
                                     .set("pruned_nodes",
                                          r.cuts.pruned_nodes)));
            }
            rows.push(std::move(row));
        }
        obs::Json body = obs::Json::object();
        body.set("manifest", manifest);
        body.set("jobs", ex.jobs());
        body.set("models", std::move(rows));
        obs::Json summary = obs::Json::object()
                                .set("total", results.size())
                                .set("ok", ok)
                                .set("violated", violated)
                                .set("errors", errors)
                                .set("seconds", total_seconds);
        obs::Json red = reduction_summary(results);
        if (red.find("models_reduced")->as_int() > 0)
            summary.set("reduction", std::move(red));
        body.set("summary", std::move(summary));
        obs::Json sched_stats = obs::Json::object();
        sched_stats.set("workers", ex.jobs());
        sched_stats.set("wall_ns",
                        static_cast<std::uint64_t>(total_seconds * 1e9));
        if (ex.pool()) {
            const auto ps = ex.pool()->stats();
            sched_stats.set("executed", ps.executed)
                .set("stolen", ps.stolen)
                .set("steal_failures", ps.steal_failures)
                .set("busy_ns", ps.busy_ns)
                .set("external_busy_ns", ps.external_busy_ns)
                .set("queue_delay_ns", ps.queue_delay_ns)
                .set("critical_path_ns", ps.critical_path_ns)
                .set("parks", ps.parks)
                .set("park_ns", ps.park_ns)
                .set("injector_contention", ps.injector_contention);
        }
        body.set("stats",
                 obs::Json::object().set("sched", std::move(sched_stats)));
        body.set("metrics", obs::Registry::instance().to_json());
        if (!obs::save_json(json_path,
                            obs::make_report("stgbatch", std::move(body)))) {
            std::cerr << "error: cannot write " << json_path << "\n";
            return 2;
        }
        if (!quiet) std::cout << "report written to " << json_path << "\n";
    }
    if (trace_path) {
        if (!obs::write_chrome_trace(trace_path)) {
            std::cerr << "error: cannot write " << trace_path << "\n";
            return 2;
        }
        if (!quiet) std::cout << "trace written to " << trace_path << "\n";
    }

    if (errors > 0) return 2;
    return violated > 0 ? 1 : 0;
}
