// Development driver: vets every benchmark model (consistency, safety,
// deadlock-freeness, conflict status) and cross-checks the unfolding+IP
// checkers against the state-graph baseline.
#include <cstdio>
#include <vector>

#include "core/checkers.hpp"
#include "petri/reachability.hpp"
#include "stg/benchmarks.hpp"
#include "stg/state_checks.hpp"
#include "stg/state_graph.hpp"
#include "unfolding/prefix_checks.hpp"
#include "unfolding/unfolder.hpp"

using namespace stgcc;

static void vet(const char* name, const stg::Stg& model, bool run_normalcy = true) {
    std::printf("%-18s S=%-3zu T=%-3zu Z=%-2zu ", name, model.net().num_places(),
                model.net().num_transitions(), model.num_signals());
    std::fflush(stdout);
    try {
        stg::StateGraph sg(model);
        std::printf("states=%-7zu safe=%d dead=%zu cons=%d ", sg.num_states(),
                    (int)sg.graph().is_safe(), sg.graph().deadlocks().size(),
                    (int)sg.consistent());
        if (!sg.consistent()) {
            std::printf("REASON: %s\n", sg.inconsistency_reason().c_str());
            return;
        }
        auto usc_sg = stg::check_usc_sg(sg);
        auto csc_sg = stg::check_csc_sg(sg);

        core::UnfoldingChecker checker(model);
        const auto& pfx = checker.prefix();
        std::printf("B=%-5zu E=%-5zu Ec=%-3zu cf=%d ", pfx.num_conditions(),
                    pfx.num_events(), pfx.num_cutoffs(),
                    (int)checker.problem().dynamically_conflict_free());
        std::fflush(stdout);
        auto usc_ip = checker.check_usc();
        auto csc_ip = checker.check_csc();
        std::printf("USC sg=%d ip=%d%s CSC sg=%d ip=%d%s ", (int)usc_sg.holds,
                    (int)usc_ip.holds, usc_sg.holds == usc_ip.holds ? "" : " MISMATCH!",
                    (int)csc_sg.holds, (int)csc_ip.holds,
                    csc_sg.holds == csc_ip.holds ? "" : " MISMATCH!");
        if (run_normalcy) {
            auto n_sg = stg::check_normalcy_sg(sg);
            auto n_ip = checker.check_normalcy();
            std::printf("NRM sg=%d ip=%d%s", (int)n_sg.normal, (int)n_ip.normal,
                        n_sg.normal == n_ip.normal ? "" : " MISMATCH!");
            for (std::size_t i = 0; i < n_sg.per_signal.size(); ++i) {
                const auto& a = n_sg.per_signal[i];
                const auto& b = *n_ip.find(a.signal);
                if (a.p_normal != b.p_normal || a.n_normal != b.n_normal)
                    std::printf(" [sig %s p %d/%d n %d/%d]",
                                model.signal_name(a.signal).c_str(), (int)a.p_normal,
                                (int)b.p_normal, (int)a.n_normal, (int)b.n_normal);
            }
        }
        std::printf("\n");
    } catch (const std::exception& ex) {
        std::printf("EXCEPTION: %s\n", ex.what());
    }
}

int main() {
    vet("vme", stg::bench::vme_bus());
    vet("vme-csc", stg::bench::vme_bus_csc_resolved());
    vet("par-3", stg::bench::parallel_handshakes(3));
    vet("pipe-3", stg::bench::handshake_pipeline(3));
    vet("seq-3", stg::bench::sequential_handshakes(3));
    vet("johnson-4", stg::bench::johnson_counter(4));
    vet("envelope-2", stg::bench::phase_envelope(2));
    for (const auto& nb : stg::bench::table1_suite())
        vet(nb.name.c_str(), nb.stg, /*run_normalcy=*/false);
    return 0;
}
