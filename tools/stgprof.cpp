// stgprof: offline profiler and bottleneck attribution over the artefacts
// the toolchain already emits -- Chrome trace-event JSON (`--trace`),
// `stgcheck` / `stgbatch --json` report envelopes and `BENCH_*.json`
// files.  Input kinds are auto-detected; any mix can be passed together
// (typically a corpus run's trace plus its aggregate report).
//
// Default mode prints the ranked bottleneck report: parallel-efficiency
// and speedup bounds from the scheduler's work-span tallies, queue-delay
// percentiles, per-span self time, the learned-clause efficacy funnel per
// model family, and the wall-clock share each loss source (queue delay,
// steal contention, serialization) explains.  `--compare A B` instead
// triages a regression between two stgbatch reports.  The analysis lives
// in src/obs/profile.cpp; docs/OBSERVABILITY.md has the workflow.
//
// Exit codes: 0 = report printed, 2 = usage or input error.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "obs/profile.hpp"

namespace {

using namespace stgcc;

void print_usage(std::ostream& out) {
    out << "usage: stgprof <artefact.json>... [options]\n"
           "       stgprof --compare A.json B.json [--threshold R]\n"
           "\n"
           "artefacts are auto-detected: Chrome traces (--trace output),\n"
           "stgcheck/stgbatch --json reports, BENCH_*.json files\n"
           "\n"
           "options:\n"
           "  --compare A B    regression triage between two stgbatch\n"
           "                   reports instead of the bottleneck report\n"
           "  --threshold R    per-model regression ratio for --compare\n"
           "                   (default: 1.25)\n"
           "  --reemit FILE    re-emit the parsed trace to FILE (byte-\n"
           "                   stable round trip; pipeline interposition)\n"
           "\n"
           "exit codes: 0 = report printed, 2 = usage/input error\n";
}

std::optional<obs::Json> load_json(const char* path) {
    obs::InputSet probe;
    std::string error;
    if (!obs::load_input(path, probe, error)) {
        std::cerr << "error: " << error << "\n";
        return std::nullopt;
    }
    if (!probe.batch) {
        std::cerr << "error: --compare needs stgbatch --json reports: "
                  << path << "\n";
        return std::nullopt;
    }
    return std::move(*probe.batch);
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        print_usage(std::cerr);
        return 2;
    }
    std::vector<const char*> inputs;
    const char* compare_a = nullptr;
    const char* compare_b = nullptr;
    const char* reemit_path = nullptr;
    double threshold = 1.25;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
            print_usage(std::cout);
            return 0;
        } else if (!std::strcmp(argv[i], "--compare") && i + 2 < argc) {
            compare_a = argv[++i];
            compare_b = argv[++i];
        } else if (!std::strcmp(argv[i], "--threshold") && i + 1 < argc) {
            char* end = nullptr;
            threshold = std::strtod(argv[++i], &end);
            if (!end || *end != '\0' || threshold <= 0.0) {
                std::cerr << "bad --threshold value\n";
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--reemit") && i + 1 < argc) {
            reemit_path = argv[++i];
        } else if (argv[i][0] != '-') {
            inputs.push_back(argv[i]);
        } else {
            std::cerr << "unknown option: " << argv[i] << "\n";
            print_usage(std::cerr);
            return 2;
        }
    }

    if (compare_a) {
        const auto a = load_json(compare_a);
        const auto b = load_json(compare_b);
        if (!a || !b) return 2;
        std::cout << obs::compare_reports(*a, *b, threshold);
        return 0;
    }

    if (inputs.empty()) {
        std::cerr << "no input files\n";
        print_usage(std::cerr);
        return 2;
    }
    obs::InputSet in;
    for (const char* path : inputs) {
        std::string error;
        if (!obs::load_input(path, in, error)) {
            std::cerr << "error: " << error << "\n";
            return 2;
        }
    }
    if (reemit_path) {
        if (!in.trace) {
            std::cerr << "error: --reemit needs a trace input\n";
            return 2;
        }
        std::ofstream out(reemit_path);
        if (!out) {
            std::cerr << "error: cannot write " << reemit_path << "\n";
            return 2;
        }
        out << obs::to_chrome_json(*in.trace);
    }
    std::cout << obs::bottleneck_report(in);
    return 0;
}
