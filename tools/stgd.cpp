// stgd: resident STG verification daemon (docs/SERVICE.md).
//
// Keeps the expensive state of a verification run -- the worker pool, the
// prefix-artifact bundles, the rendered-verdict map and the on-disk result
// cache -- alive across requests, and serves checks over Unix-domain or TCP
// sockets speaking the length-prefixed JSON protocol of src/svc/.  Clients
// are `stgcheck --connect` and `stgbatch --connect` (responses replay their
// offline output byte-for-byte, modulo timing), or anything that can frame
// JSON (see docs/SERVICE.md for the schema).
//
// Lifecycle: SIGTERM / SIGINT (or a `shutdown` request) begin a graceful
// drain -- the listeners close, every accepted request is answered, then
// the process exits 0 after writing a final stats snapshot (--stats FILE,
// or a summary line to stderr).
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/server.hpp"

namespace {

void print_usage(std::ostream& out) {
    out << "usage: stgd --listen ENDPOINT [options]\n"
           "\n"
           "endpoints (repeatable; at least one):\n"
           "  --listen unix:/path/to.sock   Unix-domain socket\n"
           "  --listen host:port            TCP (\":0\" = loopback, kernel "
           "port;\n"
           "                                the bound address is printed)\n"
           "\n"
           "options:\n"
           "  --jobs N            worker threads of the shared pool\n"
           "                      (default: hardware concurrency)\n"
           "  --cache-dir DIR     on-disk result cache (default: "
           "$STGCC_CACHE_DIR;\n"
           "                      unset = no disk cache)\n"
           "  --max-inflight N    concurrently verifying requests "
           "(default: jobs)\n"
           "  --deadline-ms D     default per-request deadline "
           "(default: none)\n"
           "  --bundle-slots N    in-memory prefix bundles kept "
           "(default: 8)\n"
           "  --stats FILE        write the final stats snapshot JSON on "
           "exit\n"
           "  --metrics-listen EP HTTP scrape endpoint serving /metrics,\n"
           "                      /healthz and /buildinfo (same endpoint\n"
           "                      syntax as --listen; default: none)\n"
           "  --event-log FILE    structured JSONL event log "
           "(docs/OBSERVABILITY.md)\n"
           "  --event-log-level L minimum record level: debug, info, warn,\n"
           "                      error (default: info)\n"
           "  --event-log-max-bytes N\n"
           "                      rotate the event log past N bytes "
           "(default: 64 MiB)\n"
           "  --quiet             suppress the startup/shutdown lines\n"
           "\n"
           "exit codes: 0 = clean drain, 2 = usage or bind error\n";
}

stgcc::svc::Server* g_server = nullptr;

void handle_signal(int) {
    if (g_server) g_server->request_shutdown();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace stgcc;
    svc::ServerConfig cfg;
    const char* stats_path = nullptr;
    bool quiet = false;
    std::string cache_dir_flag;
    bool cache_dir_set = false;
    for (int i = 1; i < argc; ++i) {
        const auto uint_arg = [&](const char* name,
                                  std::uint64_t& out) -> bool {
            if (i + 1 >= argc) {
                std::cerr << name << " needs a value\n";
                return false;
            }
            char* end = nullptr;
            out = std::strtoull(argv[++i], &end, 10);
            if (!end || *end != '\0') {
                std::cerr << "bad " << name << " value: " << argv[i] << "\n";
                return false;
            }
            return true;
        };
        if (!std::strcmp(argv[i], "--listen") && i + 1 < argc) {
            std::string error;
            const auto ep = svc::parse_endpoint(argv[++i], error);
            if (!ep) {
                std::cerr << "error: " << error << "\n";
                return 2;
            }
            cfg.listen.push_back(*ep);
        } else if (!std::strcmp(argv[i], "--jobs")) {
            std::uint64_t v = 0;
            if (!uint_arg("--jobs", v)) return 2;
            cfg.jobs = static_cast<unsigned>(v);
        } else if (!std::strcmp(argv[i], "--max-inflight")) {
            std::uint64_t v = 0;
            if (!uint_arg("--max-inflight", v)) return 2;
            cfg.max_inflight = static_cast<std::size_t>(v);
        } else if (!std::strcmp(argv[i], "--deadline-ms")) {
            if (!uint_arg("--deadline-ms", cfg.default_deadline_ms)) return 2;
        } else if (!std::strcmp(argv[i], "--bundle-slots")) {
            std::uint64_t v = 0;
            if (!uint_arg("--bundle-slots", v)) return 2;
            cfg.bundle_slots = static_cast<std::size_t>(v);
        } else if (!std::strcmp(argv[i], "--metrics-listen") && i + 1 < argc) {
            std::string error;
            const auto ep = svc::parse_endpoint(argv[++i], error);
            if (!ep) {
                std::cerr << "error: " << error << "\n";
                return 2;
            }
            cfg.metrics_listen = *ep;
        } else if (!std::strcmp(argv[i], "--event-log") && i + 1 < argc) {
            cfg.event_log_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--event-log-level") && i + 1 < argc) {
            if (!obs::parse_log_level(argv[++i], cfg.event_log_level)) {
                std::cerr << "bad --event-log-level value: " << argv[i]
                          << " (debug, info, warn or error)\n";
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--event-log-max-bytes")) {
            if (!uint_arg("--event-log-max-bytes", cfg.event_log_max_bytes))
                return 2;
        } else if (!std::strcmp(argv[i], "--cache-dir") && i + 1 < argc) {
            cache_dir_flag = argv[++i];
            cache_dir_set = true;
        } else if (!std::strcmp(argv[i], "--stats") && i + 1 < argc) {
            stats_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--quiet")) {
            quiet = true;
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            print_usage(std::cout);
            return 0;
        } else {
            std::cerr << "unknown option: " << argv[i] << "\n";
            print_usage(std::cerr);
            return 2;
        }
    }
    if (cfg.listen.empty()) {
        std::cerr << "error: at least one --listen endpoint is required\n";
        print_usage(std::cerr);
        return 2;
    }
    if (cache_dir_set)
        cfg.cache_dir = cache_dir_flag;
    else if (const char* env = std::getenv("STGCC_CACHE_DIR"))
        cfg.cache_dir = env;

    // The daemon always runs instrumented: the stats op and the final
    // snapshot expose the registry (sched.*, cache.*, svc.*).
    obs::set_enabled(true);

    svc::Server server(std::move(cfg));
    std::string error;
    if (!server.start(error)) {
        std::cerr << "error: " << error << "\n";
        return 2;
    }
    g_server = &server;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);

    if (!quiet) {
        for (const std::string& b : server.bound())
            std::cout << "stgd: listening on " << b << "\n";
        if (!server.metrics_bound().empty())
            std::cout << "stgd: metrics on http://" << server.metrics_bound()
                      << "/metrics\n";
        if (server.event_log().enabled())
            std::cout << "stgd: event log " << server.event_log().path()
                      << "\n";
        std::cout.flush();
    }

    const int rc = server.run();

    obs::Json snapshot = server.stats_json();
    if (stats_path) {
        if (!obs::save_json(stats_path, snapshot))
            std::cerr << "error: cannot write " << stats_path << "\n";
    }
    if (!quiet) {
        const obs::Json* requests = snapshot.find("requests");
        const obs::Json* served =
            requests ? requests->find("served") : nullptr;
        std::cout << "stgd: drained ("
                  << (served ? served->as_uint() : 0) << " requests served)\n";
    }
    g_server = nullptr;
    return rc;
}
